package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/journal"
)

var testHeader = journal.Header{GoldenSignature: 0xfeed, NumPoints: 40, FaultListHash: 0xbeef}

// point describes one synthetic classified point for buildJournal.
type point struct {
	idx     uint64
	ff      uint32
	cycle   uint32
	outcome uint8
	pruned  bool
	wrong   bool
	mate    int // attribution when pruned; -1 writes no hit (v1 style)
	width   uint16
}

func buildJournal(t *testing.T, hdr journal.Header, pts []point) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.journal")
	w, err := journal.Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.pruned && p.mate >= 0 {
			hit := journal.MATEHit{Index: p.idx, FF: p.ff, MATE: uint32(p.mate), Width: p.width}
			if err := w.AppendMATEHit(hit); err != nil {
				t.Fatal(err)
			}
		}
		rec := journal.Record{Index: p.idx, FF: p.ff, Cycle: p.cycle, Duration: 1,
			Outcome: p.outcome, Pruned: p.pruned, SkippedWrong: p.wrong}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// basePoints is a small campaign with every verdict class represented:
// executed benign/sdc/hang, attributed pruned points over two MATEs, one
// unattributed (v1-style) pruned point, one soundness violation.
func basePoints() []point {
	return []point{
		{idx: 0, ff: 1, cycle: 0, outcome: 0},
		{idx: 1, ff: 1, cycle: 10, outcome: 1},
		{idx: 2, ff: 2, cycle: 20, outcome: 2},
		{idx: 3, ff: 2, cycle: 30, pruned: true, mate: 0, width: 2},
		{idx: 4, ff: 3, cycle: 40, pruned: true, mate: 0, width: 2},
		{idx: 5, ff: 3, cycle: 50, pruned: true, mate: 0, width: 2},
		{idx: 6, ff: 4, cycle: 60, pruned: true, mate: 5, width: 1},
		{idx: 7, ff: 4, cycle: 70, pruned: true, mate: -1}, // pre-attribution record
		{idx: 8, ff: 5, cycle: 79, pruned: true, wrong: true, mate: 5, width: 1},
	}
}

func loadBase(t *testing.T) *Campaign {
	t.Helper()
	c, err := Load(buildJournal(t, testHeader, basePoints()), "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSummary(t *testing.T) {
	s := loadBase(t).Summary()
	if s.Points != 40 || s.Classified != 9 || s.Pruned != 6 || s.Executed != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Outcomes != [4]int{1, 1, 1, 0} {
		t.Fatalf("outcomes = %v", s.Outcomes)
	}
	if s.SkippedWrong != 1 {
		t.Fatalf("skipped-wrong = %d", s.SkippedWrong)
	}
	if s.AttributedPruned != 5 {
		t.Fatalf("attributed = %d (the v1-style point must not count)", s.AttributedPruned)
	}
	if got := s.Coverage(); got != 9.0/40 {
		t.Fatalf("coverage = %v", got)
	}
	if got := s.PrunedFraction(); got != 6.0/9 {
		t.Fatalf("pruned fraction = %v", got)
	}
}

// TestMATETableSumsToAttributed: the table's Points column must partition
// the attributed pruned points exactly, ranked by cost/benefit.
func TestMATETableSumsToAttributed(t *testing.T) {
	c := loadBase(t)
	rows := c.MATETable()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	var sum int64
	for _, r := range rows {
		sum += r.Points
	}
	if want := int64(c.Summary().AttributedPruned); sum != want {
		t.Fatalf("table sums to %d, attributed = %d", sum, want)
	}
	// MATE 5: 2 points / width 1 = 2.0 beats MATE 0: 3 points / width 2 = 1.5.
	if rows[0].MATE != 5 || rows[0].Points != 2 || rows[1].MATE != 0 || rows[1].Points != 3 {
		t.Fatalf("ranking = %+v", rows)
	}
	if rows[0].CostBenefit() != 2.0 || rows[1].CostBenefit() != 1.5 {
		t.Fatalf("cost/benefit = %v, %v", rows[0].CostBenefit(), rows[1].CostBenefit())
	}
}

// TestMATETableIgnoresOrphanHits: a hit whose point was later re-executed
// (resume re-ran an in-flight point) must not inflate the table.
func TestMATETableIgnoresOrphanHits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.journal")
	w, err := journal.Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	// Crash left a hit for point 0; the resume re-executed it as SDC.
	if err := w.AppendMATEHit(journal.MATEHit{Index: 0, FF: 1, MATE: 3, Width: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(journal.Record{Index: 0, FF: 1, Cycle: 5, Duration: 1, Outcome: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if rows := c.MATETable(); len(rows) != 0 {
		t.Fatalf("orphan hit produced rows: %+v", rows)
	}
	if s := c.Summary(); s.AttributedPruned != 0 {
		t.Fatalf("orphan hit counted as attributed: %+v", s)
	}
}

func TestHeatmap(t *testing.T) {
	c := loadBase(t)
	h := c.BuildHeatmap(8)
	if h == nil {
		t.Fatal("nil heatmap")
	}
	if h.CycleLo != 0 || h.CycleHi != 79 {
		t.Fatalf("cycle range %d-%d", h.CycleLo, h.CycleHi)
	}
	if h.BinWidth != 10 {
		t.Fatalf("bin width = %d", h.BinWidth)
	}
	if len(h.FFs) != 5 || len(h.Cells) != 5 {
		t.Fatalf("rows = %v", h.FFs)
	}
	// Every classified point lands in exactly one cell.
	n := 0
	for _, row := range h.Cells {
		for _, cell := range row {
			n += cell.Count()
		}
	}
	if n != 9 {
		t.Fatalf("cells hold %d points, classified 9", n)
	}
	// ff=1 row: benign at cycle 0, sdc at cycle 10.
	if g := h.Cells[0][0].Glyph(); g != '.' {
		t.Fatalf("ff1 bin0 glyph %q", g)
	}
	if g := h.Cells[0][1].Glyph(); g != 'S' {
		t.Fatalf("ff1 bin1 glyph %q", g)
	}
	// ff=5 row: the soundness violation dominates.
	if g := h.Cells[4][7].Glyph(); g != '!' {
		t.Fatalf("ff5 bin7 glyph %q", g)
	}
	if c.BuildHeatmap(0) != nil {
		t.Fatal("bins=0 must disable the heatmap")
	}
}

// TestDiffSelfClean: a campaign diffed against itself reports zero
// regressions — the acceptance gate the smoke script leans on.
func TestDiffSelfClean(t *testing.T) {
	c := loadBase(t)
	d, err := Diff(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 0 || d.Agree != 9 || d.PruningFlips != 0 || d.CoverageGains != 0 {
		t.Fatalf("self diff = %+v", d)
	}
}

// TestDiffFindsRegressions: drop one point and flip one verdict in the
// candidate; the diff must flag both and nothing else.
func TestDiffFindsRegressions(t *testing.T) {
	a := loadBase(t)

	mod := basePoints()
	mod = mod[:len(mod)-1] // drop point 8: coverage regression
	mod[1].outcome = 2     // point 1 sdc -> hang: classification regression
	mod[0].pruned = true   // point 0 executed-benign -> pruned: informational flip
	mod[0].mate, mod[0].width = 9, 3
	b, err := Load(buildJournal(t, testHeader, mod), "")
	if err != nil {
		t.Fatal(err)
	}

	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions() != 2 {
		t.Fatalf("regressions = %d (%+v)", d.Regressions(), d)
	}
	if len(d.CoverageRegressions) != 1 || d.CoverageRegressions[0] != 8 {
		t.Fatalf("coverage regressions = %v", d.CoverageRegressions)
	}
	if len(d.ClassificationRegressions) != 1 {
		t.Fatalf("classification regressions = %+v", d.ClassificationRegressions)
	}
	ch := d.ClassificationRegressions[0]
	if ch.Index != 1 || ch.From != "sdc" || ch.To != "hang" {
		t.Fatalf("change = %+v", ch)
	}
	if d.PruningFlips != 1 {
		t.Fatalf("pruning flips = %d (benign verdict flip must be informational)", d.PruningFlips)
	}
	if d.Agree != 7 {
		t.Fatalf("agree = %d", d.Agree)
	}
}

func TestDiffRejectsMismatchedCampaigns(t *testing.T) {
	a := loadBase(t)
	other := testHeader
	other.FaultListHash++
	b, err := Load(buildJournal(t, other, nil), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(a, b); err == nil {
		t.Fatal("diff of unrelated campaigns must error")
	}
}

// TestRenderers: each format stays well-formed and carries the attribution.
func TestRenderers(t *testing.T) {
	c := loadBase(t)
	doc := BuildDocument(c, 8)

	var text bytes.Buffer
	if err := doc.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"40 points, 9 classified",
		"UNSOUND:    1 validated-skipped",
		"attribution: 5/6 pruned points credited to 2 MATEs",
		"heatmap: cycles 0-79",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := doc.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round Document
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if !reflect.DeepEqual(round.Summary, doc.Summary) || len(round.MATEs) != len(doc.MATEs) {
		t.Fatalf("JSON round-trip = %+v", round)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+9 {
		t.Fatalf("CSV has %d rows", len(rows))
	}
	// Point 3 (first data row index 4): pruned with attribution.
	r := rows[4]
	if r[0] != "3" || r[4] != "seu" || r[5] != "benign" || r[6] != "true" || r[7] != "0" || r[8] != "2" {
		t.Fatalf("CSV row = %v", r)
	}
	// Point 7: pruned without attribution leaves mate/width empty.
	r = rows[8]
	if r[0] != "7" || r[7] != "" || r[8] != "" {
		t.Fatalf("unattributed CSV row = %v", r)
	}
}

func TestDiffRenderers(t *testing.T) {
	a := loadBase(t)
	mod := basePoints()[:8]
	b, err := Load(buildJournal(t, testHeader, mod), "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := d.WriteDiffText(&text, a.Path, b.Path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "regressions: 1") {
		t.Fatalf("diff text = %s", text.String())
	}

	var js bytes.Buffer
	if err := d.WriteDiffJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round DiffResult
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Regressions() != 1 {
		t.Fatalf("diff JSON round-trip = %+v", round)
	}

	var buf bytes.Buffer
	if err := d.WriteDiffCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0] != "coverage" || rows[1][1] != "8" {
		t.Fatalf("diff CSV = %v", rows)
	}
}

// TestLoadRequiresHeader: a journal too damaged to carry its header is
// useless for reporting and must be rejected up front.
func TestLoadRequiresHeader(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.journal"), ""); err == nil {
		t.Fatal("missing journal must error")
	}
}

func TestLoadStats(t *testing.T) {
	statsPath := filepath.Join(t.TempDir(), "run.stats")
	if err := os.WriteFile(statsPath, []byte(`{"uptime_seconds": 1.5, "counters": {"campaign_batches_total": 7}, "spans": {"campaign": {"runs": 1, "seconds": 1.2}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(buildJournal(t, testHeader, basePoints()), statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats == nil || c.Stats.UptimeSeconds != 1.5 || c.Stats.Counters["campaign_batches_total"] != 7 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	var text bytes.Buffer
	if err := BuildDocument(c, 0).WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "campaign span 1.2s") || !strings.Contains(text.String(), "7 batches") {
		t.Fatalf("stats enrichment missing:\n%s", text.String())
	}
}
