package report

import (
	"fmt"
	"sort"

	"repro/internal/journal"
)

// ClassChange is one point whose verdict differs between two campaigns.
type ClassChange struct {
	Index uint64 `json:"index"`
	FF    uint32 `json:"ff"`
	Cycle uint32 `json:"cycle"`
	From  string `json:"from"`
	To    string `json:"to"`
}

// DiffResult is the point-for-point comparison of two campaigns over the
// same fault list. "A" is the baseline, "B" the candidate.
type DiffResult struct {
	ClassifiedA int `json:"classified_a"`
	ClassifiedB int `json:"classified_b"`
	// Agree counts points classified by both campaigns with equal verdicts.
	Agree int `json:"agree"`
	// CoverageRegressions lists points classified in A but missing from B.
	CoverageRegressions []uint64 `json:"coverage_regressions"`
	// CoverageGains counts points classified only in B (informational).
	CoverageGains int `json:"coverage_gains"`
	// ClassificationRegressions lists points whose verdict changed.
	ClassificationRegressions []ClassChange `json:"classification_regressions"`
	// PruningFlips counts benign-verdict points whose pruned/executed state
	// differs (informational: pruning more or fewer points is not a
	// regression as long as the verdict holds).
	PruningFlips int `json:"pruning_flips"`
}

// Regressions returns the number of regressions (coverage plus
// classification); zero means B is point-for-point no worse than A.
func (d *DiffResult) Regressions() int {
	return len(d.CoverageRegressions) + len(d.ClassificationRegressions)
}

// Diff compares two campaigns point for point. Both journals must carry the
// same campaign identity (golden signature, fault-list length and hash) —
// diffing unrelated campaigns would produce meaningless per-index matches.
func Diff(a, b *Campaign) (*DiffResult, error) {
	if a.Rec.Header != b.Rec.Header {
		return nil, fmt.Errorf("report: %s and %s describe different campaigns (header %+v vs %+v)",
			a.Path, b.Path, a.Rec.Header, b.Rec.Header)
	}
	d := &DiffResult{ClassifiedA: len(a.Rec.ByIndex), ClassifiedB: len(b.Rec.ByIndex)}
	for idx, ra := range a.Rec.ByIndex {
		rb, ok := b.Rec.ByIndex[idx]
		if !ok {
			d.CoverageRegressions = append(d.CoverageRegressions, idx)
			continue
		}
		va, vb := Verdict(ra), Verdict(rb)
		if va != vb {
			d.ClassificationRegressions = append(d.ClassificationRegressions, ClassChange{
				Index: idx, FF: ra.FF, Cycle: ra.Cycle, From: va, To: vb,
			})
			continue
		}
		d.Agree++
		if ra.Pruned != rb.Pruned {
			d.PruningFlips++
		}
	}
	for idx := range b.Rec.ByIndex {
		if _, ok := a.Rec.ByIndex[idx]; !ok {
			d.CoverageGains++
		}
	}
	sort.Slice(d.CoverageRegressions, func(i, j int) bool {
		return d.CoverageRegressions[i] < d.CoverageRegressions[j]
	})
	sort.Slice(d.ClassificationRegressions, func(i, j int) bool {
		return d.ClassificationRegressions[i].Index < d.ClassificationRegressions[j].Index
	})
	return d, nil
}

// recordsInOrder returns the per-index records sorted by fault-list index
// (the CSV emission order).
func recordsInOrder(rec *journal.Recovered) []journal.Record {
	out := make([]journal.Record, 0, len(rec.ByIndex))
	for _, r := range rec.ByIndex {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
