package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// traceEvent is the subset of a Chrome trace-event JSON entry the checker
// inspects (see obs/tracefile for the writer side).
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int32  `json:"pid"`
	TID  int32  `json:"tid"`
	Args struct {
		Name   string `json:"name"`
		Detail string `json:"detail"`
	} `json:"args"`
}

// traceDoc is the object form the tracefile writer emits.
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// TraceCheck summarizes a validated stitched campaign trace.
type TraceCheck struct {
	// TraceID is the campaign trace id parsed from the root span's detail.
	TraceID string `json:"trace_id"`
	// Events counts every event in the document (including metadata).
	Events int `json:"events"`
	// Shards counts the shard process groups (pid > 1 with a shard span).
	Shards int `json:"shards"`
	// SegmentEvents counts worker-recorded events nested inside shard spans.
	SegmentEvents int `json:"segment_events"`
	// Workers lists the distinct worker names from the shard group labels.
	Workers []string `json:"workers"`
}

// CheckTrace parses the stitched campaign trace at path and verifies its
// structure: the document is well-formed trace-event JSON, it carries
// exactly one campaign root span on the coordinator process (pid 1), every
// shard process group has a grant→complete shard span nested inside the
// root, and every worker segment event nests inside its shard's span.
// These are the invariants the coordinator's timestamp clamping is supposed
// to guarantee regardless of worker clock skew — a violation means the
// stitcher regressed, not the worker.
func CheckTrace(path string) (*TraceCheck, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("report: %s is not valid trace JSON: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, fmt.Errorf("report: %s has no trace events", path)
	}

	chk := &TraceCheck{Events: len(doc.TraceEvents)}
	var root *traceEvent
	shardSpans := map[int32]traceEvent{}
	workers := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.PID == 1 && ev.Name == "campaign":
			if root != nil {
				return nil, fmt.Errorf("report: %s has multiple campaign root spans (want 1)", path)
			}
			root = &doc.TraceEvents[i]
			chk.TraceID = strings.TrimPrefix(ev.Args.Detail, "trace ")
		case ev.Ph == "X" && ev.PID > 1 && ev.Name == "shard":
			if _, dup := shardSpans[ev.PID]; dup {
				return nil, fmt.Errorf("report: %s: pid %d has two shard spans", path, ev.PID)
			}
			shardSpans[ev.PID] = ev
		case ev.Ph == "M" && ev.Name == "process_name" && ev.PID > 1:
			// "shard NN · worker" — the worker label the stitcher attached.
			if _, worker, ok := strings.Cut(ev.Args.Name, " · "); ok && worker != "" {
				workers[worker] = true
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("report: %s has no campaign root span (pid 1)", path)
	}
	if len(shardSpans) == 0 {
		return nil, fmt.Errorf("report: %s has no shard spans", path)
	}
	chk.Shards = len(shardSpans)

	within := func(ev traceEvent, lo, hi int64) bool {
		return ev.TS >= lo && ev.TS+ev.Dur <= hi
	}
	for pid, sh := range shardSpans {
		if !within(sh, root.TS, root.TS+root.Dur) {
			return nil, fmt.Errorf("report: %s: shard span on pid %d [%d,%d)µs escapes the campaign root [%d,%d)µs",
				path, pid, sh.TS, sh.TS+sh.Dur, root.TS, root.TS+root.Dur)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.PID <= 1 || ev.Ph == "M" || (ev.Ph == "X" && ev.Name == "shard") {
			continue
		}
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		sh, ok := shardSpans[ev.PID]
		if !ok {
			return nil, fmt.Errorf("report: %s: event %q on pid %d has no shard span", path, ev.Name, ev.PID)
		}
		if !within(ev, sh.TS, sh.TS+sh.Dur) {
			return nil, fmt.Errorf("report: %s: event %q at %dµs (+%dµs) on pid %d escapes its shard span [%d,%d)µs",
				path, ev.Name, ev.TS, ev.Dur, ev.PID, sh.TS, sh.TS+sh.Dur)
		}
		chk.SegmentEvents++
	}

	for w := range workers {
		chk.Workers = append(chk.Workers, w)
	}
	sort.Strings(chk.Workers)
	return chk, nil
}
