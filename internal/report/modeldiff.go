package report

import (
	"fmt"
	"sort"

	"repro/internal/journal"
)

// Cross-model comparison. Two campaigns over the same workload but
// different fault models enumerate DIFFERENT fault lists (an MBU burst or
// a SET flip-set is not an SEU point), so the point-for-point Diff cannot
// compare them. DiffModels instead aggregates each campaign to injection
// sites — (FF, Cycle) pairs, using the anchor FF for multi-target points —
// keeps the most severe verdict observed at each site, and compares sites.
// The result is informational (which sites a harsher model escalates),
// never a regression: models are expected to disagree.

// verdictRank orders verdicts by severity for the per-site aggregation.
// Unknown verdicts rank above everything: a verdict we cannot name should
// surface, not vanish under a benign one.
func verdictRank(v string) int {
	switch v {
	case "benign":
		return 0
	case "harness-error":
		return 1
	case "sdc":
		return 2
	case "hang":
		return 3
	case "skipped-wrong":
		return 4
	}
	return 5
}

// SiteChange is one injection site whose most-severe verdict differs
// between two campaigns.
type SiteChange struct {
	FF       uint32 `json:"ff"`
	Cycle    uint32 `json:"cycle"`
	VerdictA string `json:"verdict_a"`
	VerdictB string `json:"verdict_b"`
}

// ModelDiffResult is the site-level comparison of two campaigns run under
// different fault models. "A" is the reference (typically SEU), "B" the
// model under study.
type ModelDiffResult struct {
	// ModelsA and ModelsB name the fault models seen in each journal.
	ModelsA []string `json:"models_a"`
	ModelsB []string `json:"models_b"`
	// SitesA and SitesB count distinct (FF, Cycle) injection sites.
	SitesA int `json:"sites_a"`
	SitesB int `json:"sites_b"`
	// Common counts sites present in both campaigns; Agree those whose
	// most-severe verdicts match.
	Common int `json:"common"`
	Agree  int `json:"agree"`
	// OnlyA/OnlyB count sites one model exercises and the other does not
	// (e.g. SET points exist only where a gate's cone reaches a latch).
	OnlyA int `json:"only_a"`
	OnlyB int `json:"only_b"`
	// Escalations counts common sites where B's verdict is MORE severe
	// than A's; Downgrades the reverse. Changes lists every differing
	// site, most severe B-verdict first.
	Escalations int          `json:"escalations"`
	Downgrades  int          `json:"downgrades"`
	Changes     []SiteChange `json:"changes"`
}

type siteKey struct{ ff, cycle uint32 }

// siteVerdicts reduces a campaign to its per-site most-severe verdict and
// the set of model names it exercised.
func siteVerdicts(rec *journal.Recovered) (map[siteKey]string, []string) {
	sites := map[siteKey]string{}
	models := map[uint8]bool{}
	for _, r := range rec.ByIndex {
		models[r.Model] = true
		k := siteKey{r.FF, r.Cycle}
		v := Verdict(r)
		if prev, ok := sites[k]; !ok || verdictRank(v) > verdictRank(prev) {
			sites[k] = v
		}
	}
	names := make([]string, 0, len(models))
	for code := range models {
		names = append(names, ModelName(code))
	}
	sort.Strings(names)
	return sites, names
}

// DiffModels compares two campaigns of the same workload run under
// different fault models, site by site. Only the golden signature must
// match (same binary and workload); fault-list length and hash are allowed
// — expected — to differ.
func DiffModels(a, b *Campaign) (*ModelDiffResult, error) {
	if a.Rec.Header.GoldenSignature != b.Rec.Header.GoldenSignature {
		return nil, fmt.Errorf("report: %s and %s describe different workloads (golden %016x vs %016x)",
			a.Path, b.Path, a.Rec.Header.GoldenSignature, b.Rec.Header.GoldenSignature)
	}
	sa, ma := siteVerdicts(a.Rec)
	sb, mb := siteVerdicts(b.Rec)
	d := &ModelDiffResult{ModelsA: ma, ModelsB: mb, SitesA: len(sa), SitesB: len(sb)}
	for k, va := range sa {
		vb, ok := sb[k]
		if !ok {
			d.OnlyA++
			continue
		}
		d.Common++
		switch ra, rb := verdictRank(va), verdictRank(vb); {
		case ra == rb && va == vb:
			d.Agree++
		case rb > ra:
			d.Escalations++
			d.Changes = append(d.Changes, SiteChange{FF: k.ff, Cycle: k.cycle, VerdictA: va, VerdictB: vb})
		default:
			d.Downgrades++
			d.Changes = append(d.Changes, SiteChange{FF: k.ff, Cycle: k.cycle, VerdictA: va, VerdictB: vb})
		}
	}
	d.OnlyB = len(sb) - d.Common
	sort.Slice(d.Changes, func(i, j int) bool {
		ci, cj := d.Changes[i], d.Changes[j]
		if ri, rj := verdictRank(ci.VerdictB), verdictRank(cj.VerdictB); ri != rj {
			return ri > rj
		}
		if ci.FF != cj.FF {
			return ci.FF < cj.FF
		}
		return ci.Cycle < cj.Cycle
	})
	return d, nil
}
