package report

import "sort"

// Heatmap is the FF × cycle-window outcome grid of one campaign: every
// classified point lands in the cell (its flip-flop, its cycle's window),
// cells aggregate outcome counts, and the text renderer shows each cell's
// most severe verdict — a vulnerability map of the workload.
type Heatmap struct {
	// FFs lists the distinct flip-flops seen, ascending (one row each).
	FFs []int `json:"ffs"`
	// CycleLo/CycleHi bound the observed injection cycles (inclusive).
	CycleLo int `json:"cycle_lo"`
	CycleHi int `json:"cycle_hi"`
	// BinWidth is the cycle span of one column.
	BinWidth int `json:"bin_width"`
	// Cells is indexed [row][bin] following FFs × the window sequence.
	Cells [][]Cell `json:"cells"`
}

// Cell aggregates the points of one (FF, cycle-window) pair.
type Cell struct {
	Pruned       int    `json:"pruned,omitempty"`
	Outcomes     [4]int `json:"outcomes,omitempty"`
	SkippedWrong int    `json:"skipped_wrong,omitempty"`
}

// Count returns the number of points in the cell.
func (c Cell) Count() int {
	n := c.Pruned
	for _, o := range c.Outcomes {
		n += o
	}
	return n
}

// Glyph renders the cell's most severe verdict as one character:
// '!' skipped-wrong (soundness violation), 'S' silent data corruption,
// 'H' hang, 'E' harness error, '.' executed benign, 'p' pruned benign,
// ' ' no classified point.
func (c Cell) Glyph() byte {
	switch {
	case c.SkippedWrong > 0:
		return '!'
	case c.Outcomes[1] > 0:
		return 'S'
	case c.Outcomes[2] > 0:
		return 'H'
	case c.Outcomes[3] > 0:
		return 'E'
	case c.Outcomes[0] > 0:
		return '.'
	case c.Pruned > 0:
		return 'p'
	}
	return ' '
}

// BuildHeatmap bins the campaign's classified points into at most bins
// cycle windows (at least one cycle wide). Returns nil when the journal has
// no classified points or bins < 1.
func (c *Campaign) BuildHeatmap(bins int) *Heatmap {
	if bins < 1 || len(c.Rec.ByIndex) == 0 {
		return nil
	}
	h := &Heatmap{CycleLo: int(^uint(0) >> 1)}
	ffSet := map[int]bool{}
	for _, rec := range c.Rec.ByIndex {
		ffSet[int(rec.FF)] = true
		if cyc := int(rec.Cycle); cyc < h.CycleLo {
			h.CycleLo = cyc
		}
		if cyc := int(rec.Cycle); cyc > h.CycleHi {
			h.CycleHi = cyc
		}
	}
	for ff := range ffSet {
		h.FFs = append(h.FFs, ff)
	}
	sort.Ints(h.FFs)
	span := h.CycleHi - h.CycleLo + 1
	h.BinWidth = (span + bins - 1) / bins
	nbins := (span + h.BinWidth - 1) / h.BinWidth
	rowOf := make(map[int]int, len(h.FFs))
	h.Cells = make([][]Cell, len(h.FFs))
	for i, ff := range h.FFs {
		rowOf[ff] = i
		h.Cells[i] = make([]Cell, nbins)
	}
	for _, rec := range c.Rec.ByIndex {
		cell := &h.Cells[rowOf[int(rec.FF)]][(int(rec.Cycle)-h.CycleLo)/h.BinWidth]
		if rec.Pruned {
			cell.Pruned++
			if rec.SkippedWrong {
				cell.SkippedWrong++
			}
		} else if int(rec.Outcome) < len(cell.Outcomes) {
			cell.Outcomes[rec.Outcome]++
		}
	}
	return h
}
