package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
)

// buildRecordJournal writes raw journal records (model fields included) and
// returns a loaded Campaign.
func buildRecordJournal(t *testing.T, hdr journal.Header, recs []journal.Record) *Campaign {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.journal")
	w, err := journal.Create(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModelName(t *testing.T) {
	for code, want := range map[uint8]string{0: "seu", 1: "mbu", 2: "set", 3: "intermittent", 4: "stuck-at"} {
		if got := ModelName(code); got != want {
			t.Errorf("ModelName(%d) = %q, want %q", code, got, want)
		}
	}
	if got := ModelName(9); !strings.Contains(got, "9") {
		t.Errorf("unknown model code rendered as %q", got)
	}
}

// TestSummaryModelsBreakdown: the per-model map appears exactly when a
// journal carries non-SEU records, and partitions the totals.
func TestSummaryModelsBreakdown(t *testing.T) {
	hdr := journal.Header{GoldenSignature: 0xfeed, NumPoints: 10, FaultListHash: 1}
	c := buildRecordJournal(t, hdr, []journal.Record{
		{Index: 0, FF: 1, Duration: 1, Outcome: 0},
		{Index: 1, FF: 1, Cycle: 5, Duration: 1, Pruned: true},
		{Index: 2, FF: 2, Cycle: 9, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 1},
		{Index: 3, FF: 3, Cycle: 9, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 0},
		{Index: 4, FF: 4, Cycle: 9, Duration: 4, Model: 4, Span: 1, Period: 1, StuckHigh: true, Outcome: 2},
	})
	s := c.Summary()
	if len(s.Models) != 3 {
		t.Fatalf("models = %v, want seu+mbu+stuck-at", s.Models)
	}
	if m := s.Models["seu"]; m.Classified != 2 || m.Pruned != 1 || m.Executed != 1 || m.Outcomes[0] != 1 {
		t.Fatalf("seu summary = %+v", m)
	}
	if m := s.Models["mbu"]; m.Classified != 2 || m.Pruned != 0 || m.Outcomes[1] != 1 || m.Outcomes[0] != 1 {
		t.Fatalf("mbu summary = %+v", m)
	}
	if m := s.Models["stuck-at"]; m.Classified != 1 || m.Outcomes[2] != 1 {
		t.Fatalf("stuck-at summary = %+v", m)
	}
	total := 0
	for _, m := range s.Models {
		total += m.Classified
	}
	if total != s.Classified {
		t.Fatalf("per-model classified sums to %d, campaign total %d", total, s.Classified)
	}

	// A pure-SEU campaign keeps the legacy document shape: no Models map.
	legacy := buildRecordJournal(t, hdr, []journal.Record{
		{Index: 0, FF: 1, Duration: 1, Outcome: 0},
		{Index: 1, FF: 1, Cycle: 5, Duration: 1, Pruned: true},
	})
	if ls := legacy.Summary(); ls.Models != nil {
		t.Fatalf("pure-SEU campaign grew a models map: %v", ls.Models)
	}
}

// modelDiffFixtures builds an SEU reference campaign and an MBU campaign
// over the same workload with controlled per-site verdicts.
func modelDiffFixtures(t *testing.T) (*Campaign, *Campaign) {
	t.Helper()
	hdrA := journal.Header{GoldenSignature: 0xfeed, NumPoints: 4, FaultListHash: 0xa}
	hdrB := journal.Header{GoldenSignature: 0xfeed, NumPoints: 4, FaultListHash: 0xb}
	// Reference (SEU): site (1,10) benign, (2,10) sdc, (3,20) benign,
	// (9,90) benign (not exercised by B).
	a := buildRecordJournal(t, hdrA, []journal.Record{
		{Index: 0, FF: 1, Cycle: 10, Duration: 1, Outcome: 0},
		{Index: 1, FF: 2, Cycle: 10, Duration: 1, Outcome: 1},
		{Index: 2, FF: 3, Cycle: 20, Duration: 1, Pruned: true},
		{Index: 3, FF: 9, Cycle: 90, Duration: 1, Outcome: 0},
	})
	// Under study (MBU): (1,10) escalates to hang, (2,10) downgrades to
	// benign, (3,20) agrees benign, (7,70) only-B.
	b := buildRecordJournal(t, hdrB, []journal.Record{
		{Index: 0, FF: 1, Cycle: 10, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 2},
		{Index: 1, FF: 2, Cycle: 10, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 0},
		{Index: 2, FF: 3, Cycle: 20, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 0},
		{Index: 3, FF: 7, Cycle: 70, Duration: 1, Model: 1, Span: 2, Period: 1, Outcome: 1},
	})
	return a, b
}

func TestDiffModels(t *testing.T) {
	a, b := modelDiffFixtures(t)
	d, err := DiffModels(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(d.ModelsA, "+"), "seu"; got != want {
		t.Errorf("models A = %q, want %q", got, want)
	}
	if got, want := strings.Join(d.ModelsB, "+"), "mbu"; got != want {
		t.Errorf("models B = %q, want %q", got, want)
	}
	if d.SitesA != 4 || d.SitesB != 4 || d.Common != 3 || d.OnlyA != 1 || d.OnlyB != 1 {
		t.Fatalf("site counts: %+v", d)
	}
	if d.Agree != 1 || d.Escalations != 1 || d.Downgrades != 1 {
		t.Fatalf("verdict counts: %+v", d)
	}
	if len(d.Changes) != 2 {
		t.Fatalf("changes = %+v", d.Changes)
	}
	// Sorted by B-verdict severity: the hang escalation before the benign
	// downgrade.
	if d.Changes[0].VerdictB != "hang" || d.Changes[0].FF != 1 {
		t.Fatalf("first change = %+v, want the hang escalation", d.Changes[0])
	}
	if d.Changes[1].VerdictA != "sdc" || d.Changes[1].VerdictB != "benign" {
		t.Fatalf("second change = %+v, want the downgrade", d.Changes[1])
	}

	// A pruned point's site counts as benign: site (3,20) agreed above even
	// though A pruned it and B executed it.

	// Different workloads must be refused.
	hdrC := journal.Header{GoldenSignature: 0xdead, NumPoints: 1, FaultListHash: 0xc}
	c := buildRecordJournal(t, hdrC, []journal.Record{{Index: 0, FF: 1, Duration: 1}})
	if _, err := DiffModels(a, c); err == nil {
		t.Fatal("DiffModels accepted campaigns of different workloads")
	}
}

// TestDiffModelsMostSeverePerSite: several records at one site aggregate
// to the most severe verdict before comparison.
func TestDiffModelsMostSeverePerSite(t *testing.T) {
	hdrA := journal.Header{GoldenSignature: 0xfeed, NumPoints: 2, FaultListHash: 0xa}
	hdrB := journal.Header{GoldenSignature: 0xfeed, NumPoints: 2, FaultListHash: 0xb}
	a := buildRecordJournal(t, hdrA, []journal.Record{
		{Index: 0, FF: 5, Cycle: 30, Duration: 1, Outcome: 0},
		{Index: 1, FF: 5, Cycle: 30, Duration: 2, Outcome: 0},
	})
	// Two SET records anchored at the same site; the sdc one must win.
	b := buildRecordJournal(t, hdrB, []journal.Record{
		{Index: 0, FF: 5, Cycle: 30, Duration: 1, Model: 2, Span: 1, Period: 1, NumTargets: 2, TargetsHash: 7, Outcome: 0},
		{Index: 1, FF: 5, Cycle: 30, Duration: 1, Model: 2, Span: 1, Period: 1, NumTargets: 3, TargetsHash: 8, Outcome: 1},
	})
	d, err := DiffModels(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.SitesA != 1 || d.SitesB != 1 || d.Common != 1 || d.Escalations != 1 {
		t.Fatalf("aggregation: %+v", d)
	}
	if d.Changes[0].VerdictB != "sdc" {
		t.Fatalf("most severe verdict not kept: %+v", d.Changes[0])
	}
}

func TestModelDiffRenderers(t *testing.T) {
	a, b := modelDiffFixtures(t)
	d, err := DiffModels(a, b)
	if err != nil {
		t.Fatal(err)
	}

	var text bytes.Buffer
	if err := d.WriteModelDiffText(&text, "a.journal", "b.journal"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model diff:", "seu", "mbu", "escalation", "ff=1", "benign -> hang"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, text.String())
		}
	}

	var js bytes.Buffer
	if err := d.WriteModelDiffJSON(&js); err != nil {
		t.Fatal(err)
	}
	var round ModelDiffResult
	if err := json.Unmarshal(js.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Escalations != d.Escalations || len(round.Changes) != len(d.Changes) {
		t.Fatalf("JSON round trip lost data: %+v", round)
	}

	var csvBuf bytes.Buffer
	if err := d.WriteModelDiffCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(d.Changes) {
		t.Fatalf("CSV has %d rows, want header + %d changes", len(rows), len(d.Changes))
	}
	if got := strings.Join(rows[0], ","); got != "ff,cycle,verdict_a,verdict_b" {
		t.Fatalf("CSV header = %q", got)
	}
}

func TestVerdictRank(t *testing.T) {
	order := []string{"benign", "harness-error", "sdc", "hang", "skipped-wrong"}
	for i := 1; i < len(order); i++ {
		if verdictRank(order[i-1]) >= verdictRank(order[i]) {
			t.Errorf("verdictRank(%q) !< verdictRank(%q)", order[i-1], order[i])
		}
	}
	if verdictRank("???") <= verdictRank("hang") {
		t.Error("unknown verdicts must rank above named ones")
	}
}
