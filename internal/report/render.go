package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Document is the single-campaign report: everything the text, JSON and CSV
// renderers draw from.
type Document struct {
	Path    string    `json:"journal"`
	Summary Summary   `json:"summary"`
	MATEs   []MATERow `json:"mates"`
	Heatmap *Heatmap  `json:"heatmap,omitempty"`
	Stats   *Stats    `json:"stats,omitempty"`
}

// BuildDocument assembles the report of one campaign. bins parameterises
// the heatmap (0 disables it).
func BuildDocument(c *Campaign, bins int) *Document {
	return &Document{
		Path:    c.Path,
		Summary: c.Summary(),
		MATEs:   c.MATETable(),
		Heatmap: c.BuildHeatmap(bins),
		Stats:   c.Stats,
	}
}

// WriteText renders the report for humans.
func (d *Document) WriteText(w io.Writer) error {
	s := d.Summary
	fmt.Fprintf(w, "campaign:   %s\n", d.Path)
	fmt.Fprintf(w, "fault list: %d points, %d classified (%.2f%% coverage)\n",
		s.Points, s.Classified, 100*s.Coverage())
	fmt.Fprintf(w, "pruned:     %d (%.2f%% of classified), %d executed\n",
		s.Pruned, 100*s.PrunedFraction(), s.Executed)
	fmt.Fprintf(w, "outcomes:   benign=%d sdc=%d hang=%d harness-error=%d\n",
		s.Outcomes[0], s.Outcomes[1], s.Outcomes[2], s.Outcomes[3])
	if len(s.Models) > 0 {
		names := make([]string, 0, len(s.Models))
		for name := range s.Models {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(w, "models:")
		for _, name := range names {
			m := s.Models[name]
			fmt.Fprintf(w, "  %-12s %d classified, %d pruned, %d executed (benign=%d sdc=%d hang=%d harness-error=%d)\n",
				name, m.Classified, m.Pruned, m.Executed,
				m.Outcomes[0], m.Outcomes[1], m.Outcomes[2], m.Outcomes[3])
		}
	}
	if s.SkippedWrong > 0 {
		fmt.Fprintf(w, "UNSOUND:    %d validated-skipped points were NOT benign\n", s.SkippedWrong)
	}
	if s.Torn || s.Corrupt {
		fmt.Fprintf(w, "journal:    tail damaged (torn=%v corrupt=%v, %d bytes dropped)\n",
			s.Torn, s.Corrupt, s.DroppedBytes)
	}

	var attributed int64
	for _, row := range d.MATEs {
		attributed += row.Points
	}
	fmt.Fprintf(w, "attribution: %d/%d pruned points credited to %d MATEs\n",
		attributed, s.Pruned, len(d.MATEs))
	if len(d.MATEs) > 0 {
		fmt.Fprintln(w, "\n  mate   width  points   cost/benefit")
		for _, row := range d.MATEs {
			fmt.Fprintf(w, "  #%-5d %-6d %-8d %.1f\n", row.MATE, row.Width, row.Points, row.CostBenefit())
		}
	}

	if h := d.Heatmap; h != nil {
		fmt.Fprintf(w, "\nheatmap: cycles %d-%d, %d cycles per column\n", h.CycleLo, h.CycleHi, h.BinWidth)
		fmt.Fprintln(w, "  (S=sdc H=hang E=harness-error .=benign p=pruned !=unsound)")
		for i, ff := range h.FFs {
			row := make([]byte, len(h.Cells[i]))
			for j, cell := range h.Cells[i] {
				row[j] = cell.Glyph()
			}
			fmt.Fprintf(w, "  ff %-5d |%s|\n", ff, row)
		}
	}

	if st := d.Stats; st != nil {
		fmt.Fprintf(w, "\nruntime (from -stats-json): %.1fs", st.UptimeSeconds)
		if sp, ok := st.Spans["campaign"]; ok {
			fmt.Fprintf(w, ", campaign span %.1fs", sp.Seconds)
		}
		if n, ok := st.Counters["campaign_batches_total"]; ok {
			fmt.Fprintf(w, ", %d batches", n)
		}
		fmt.Fprintln(w)
		if n, ok := st.Counters["campaign_converged_total"]; ok && n > 0 {
			fmt.Fprintf(w, "convergence: %d experiments retired early", n)
			if s, ok := st.Counters["campaign_cycles_saved_total"]; ok {
				fmt.Fprintf(w, ", %d simulation cycles saved", s)
			}
			fmt.Fprintln(w)
		}
		// Wide-engine telemetry: lane width plus the cone-delta evaluator's
		// work accounting. Older dumps (pre-wide engines, 64-lane journals)
		// carry none of these keys and print nothing.
		lanes, hasLanes := st.Gauges["campaign_lanes"]
		skipped, hasSkipped := st.Counters["sim_delta_gates_skipped_total"]
		fallbacks, hasFallback := st.Counters["sim_frontier_fallback_total"]
		if (hasLanes && lanes > 0) || hasSkipped || hasFallback {
			fmt.Fprintf(w, "simulation:")
			sep := " "
			if hasLanes && lanes > 0 {
				fmt.Fprintf(w, "%s%d lanes", sep, lanes)
				sep = ", "
			}
			if hasSkipped {
				fmt.Fprintf(w, "%s%d gate evaluations skipped by cone-delta", sep, skipped)
				sep = ", "
			}
			if hasFallback {
				fmt.Fprintf(w, "%s%d dense-dispatch fallbacks", sep, fallbacks)
			}
			fmt.Fprintln(w)
		}
		// Per-experiment and per-batch latency percentiles, bucket-estimated
		// by the exporter from the engine's duration histograms.
		if h, ok := st.Histograms["campaign_experiment_seconds"]; ok && h.Count > 0 {
			fmt.Fprintf(w, "latency:    experiment p50=%s p95=%s p99=%s (%d samples)\n",
				fmtSeconds(h.P50), fmtSeconds(h.P95), fmtSeconds(h.P99), h.Count)
		}
		if h, ok := st.Histograms["campaign_batch_seconds"]; ok && h.Count > 0 {
			fmt.Fprintf(w, "            batch      p50=%s p95=%s p99=%s (%d samples)\n",
				fmtSeconds(h.P50), fmtSeconds(h.P95), fmtSeconds(h.P99), h.Count)
		}
		if n, ok := st.Counters["fleet_leases_granted_total"]; ok {
			// A fleet-merged campaign: surface the coordinator's recovery
			// counters (how contested the leases were, what fencing stopped).
			fmt.Fprintf(w, "fleet:      %d leases granted, %d expired, %d re-leased", n,
				st.Counters["fleet_lease_expiries_total"], st.Counters["fleet_lease_regrants_total"])
			if s := st.Counters["fleet_completions_stale_total"]; s > 0 {
				fmt.Fprintf(w, ", %d stale completions fenced off", s)
			}
			if s := st.Counters["fleet_completions_invalid_total"]; s > 0 {
				fmt.Fprintf(w, ", %d invalid uploads rejected", s)
			}
			if m := st.Counters["fleet_merges_total"]; m > 0 {
				fmt.Fprintf(w, ", merged %d×", m)
			}
			fmt.Fprintln(w)
		}
		// A coordinator dump carries per-worker point counters folded from
		// heartbeat telemetry: render the fleet's workload split.
		if byWorker := st.LabeledCounters("fleet_worker_points_total", "worker"); len(byWorker) > 0 {
			names := make([]string, 0, len(byWorker))
			var total int64
			for name, n := range byWorker {
				names = append(names, name)
				total += n
			}
			sort.Slice(names, func(i, j int) bool {
				if byWorker[names[i]] != byWorker[names[j]] {
					return byWorker[names[i]] > byWorker[names[j]]
				}
				return names[i] < names[j]
			})
			fmt.Fprintf(w, "workers:    %d contributed points\n", len(names))
			for _, name := range names {
				share := 0.0
				if total > 0 {
					share = 100 * float64(byWorker[name]) / float64(total)
				}
				fmt.Fprintf(w, "  %-24s %8d points (%.1f%%)\n", name, byWorker[name], share)
			}
		}
		terms, hasTerms := st.Counters["exact_terms_found_total"]
		certs, hasCerts := st.Counters["exact_unmaskable_total"]
		if hasTerms || hasCerts {
			fmt.Fprintf(w, "exact:      %d BDD-derived terms, %d certified-unmaskable flip-flops",
				terms, certs)
			if n, ok := st.Counters["exact_bdd_nodes_total"]; ok {
				fmt.Fprintf(w, ", %d BDD nodes", n)
			}
			if n, ok := st.Counters["exact_truncated_total"]; ok && n > 0 {
				fmt.Fprintf(w, ", %d cones over budget", n)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// fmtSeconds renders a duration in seconds with a unit that keeps small
// latencies readable (µs/ms below a second).
func fmtSeconds(s float64) string {
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

// WriteJSON renders the report as one JSON document.
func (d *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteCSV renders the per-point classification (one row per classified
// fault-list index, with its attribution when pruned) — the machine-readable
// long form downstream tooling joins on.
func WriteCSV(w io.Writer, c *Campaign) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "ff", "cycle", "duration", "model", "verdict", "pruned", "mate", "width"}); err != nil {
		return err
	}
	for _, rec := range recordsInOrder(c.Rec) {
		mate, width := "", ""
		if rec.Pruned {
			if hit, ok := c.Rec.HitByIndex[rec.Index]; ok {
				mate = strconv.Itoa(int(hit.MATE))
				width = strconv.Itoa(int(hit.Width))
			}
		}
		err := cw.Write([]string{
			strconv.FormatUint(rec.Index, 10),
			strconv.Itoa(int(rec.FF)),
			strconv.Itoa(int(rec.Cycle)),
			strconv.Itoa(int(rec.Duration)),
			ModelName(rec.Model),
			Verdict(rec),
			strconv.FormatBool(rec.Pruned),
			mate, width,
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDiffText renders a diff for humans.
func (d *DiffResult) WriteDiffText(w io.Writer, pathA, pathB string) error {
	fmt.Fprintf(w, "diff:       %s (baseline) vs %s\n", pathA, pathB)
	fmt.Fprintf(w, "classified: %d vs %d, %d agree\n", d.ClassifiedA, d.ClassifiedB, d.Agree)
	fmt.Fprintf(w, "info:       %d pruning flips (verdict unchanged), %d coverage gains\n",
		d.PruningFlips, d.CoverageGains)
	if n := len(d.CoverageRegressions); n > 0 {
		fmt.Fprintf(w, "coverage regressions: %d points classified only in baseline\n", n)
		for i, idx := range d.CoverageRegressions {
			if i == 20 {
				fmt.Fprintf(w, "  ... %d more\n", n-20)
				break
			}
			fmt.Fprintf(w, "  point %d\n", idx)
		}
	}
	if n := len(d.ClassificationRegressions); n > 0 {
		fmt.Fprintf(w, "classification regressions: %d points changed verdict\n", n)
		for i, ch := range d.ClassificationRegressions {
			if i == 20 {
				fmt.Fprintf(w, "  ... %d more\n", n-20)
				break
			}
			fmt.Fprintf(w, "  point %d (ff=%d cycle=%d): %s -> %s\n", ch.Index, ch.FF, ch.Cycle, ch.From, ch.To)
		}
	}
	if d.Regressions() == 0 {
		fmt.Fprintln(w, "regressions: none")
	} else {
		fmt.Fprintf(w, "regressions: %d\n", d.Regressions())
	}
	return nil
}

// WriteDiffJSON renders a diff as one JSON document.
func (d *DiffResult) WriteDiffJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteModelDiffText renders a cross-model comparison for humans.
func (d *ModelDiffResult) WriteModelDiffText(w io.Writer, pathA, pathB string) error {
	fmt.Fprintf(w, "model diff: %s (%s) vs %s (%s)\n",
		pathA, joinNames(d.ModelsA), pathB, joinNames(d.ModelsB))
	fmt.Fprintf(w, "sites:      %d vs %d (%d common, %d only in A, %d only in B)\n",
		d.SitesA, d.SitesB, d.Common, d.OnlyA, d.OnlyB)
	fmt.Fprintf(w, "verdicts:   %d agree, %d escalations, %d downgrades\n",
		d.Agree, d.Escalations, d.Downgrades)
	for i, ch := range d.Changes {
		if i == 20 {
			fmt.Fprintf(w, "  ... %d more\n", len(d.Changes)-20)
			break
		}
		fmt.Fprintf(w, "  site (ff=%d cycle=%d): %s -> %s\n", ch.FF, ch.Cycle, ch.VerdictA, ch.VerdictB)
	}
	return nil
}

// WriteModelDiffJSON renders a cross-model comparison as one JSON document.
func (d *ModelDiffResult) WriteModelDiffJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteModelDiffCSV renders the differing sites as CSV.
func (d *ModelDiffResult) WriteModelDiffCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ff", "cycle", "verdict_a", "verdict_b"}); err != nil {
		return err
	}
	for _, ch := range d.Changes {
		err := cw.Write([]string{
			strconv.Itoa(int(ch.FF)), strconv.Itoa(int(ch.Cycle)), ch.VerdictA, ch.VerdictB,
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func joinNames(names []string) string {
	if len(names) == 0 {
		return "no records"
	}
	out := names[0]
	for _, n := range names[1:] {
		out += "+" + n
	}
	return out
}

// WriteDiffCSV renders the regression lists as CSV (kind =
// "coverage"|"classification").
func (d *DiffResult) WriteDiffCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "index", "ff", "cycle", "from", "to"}); err != nil {
		return err
	}
	for _, idx := range d.CoverageRegressions {
		if err := cw.Write([]string{"coverage", strconv.FormatUint(idx, 10), "", "", "classified", "missing"}); err != nil {
			return err
		}
	}
	for _, ch := range d.ClassificationRegressions {
		err := cw.Write([]string{"classification", strconv.FormatUint(ch.Index, 10),
			strconv.Itoa(int(ch.FF)), strconv.Itoa(int(ch.Cycle)), ch.From, ch.To})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
