package sim

import "repro/internal/netlist"

// Bus transposition between the machine's bit-plane representation (one
// uint64 per wire, bit l = lane l) and the lane-major representation the
// behavioural memory environments work in (one bus value per lane).
//
// Both directions use the carry-free multiply transpose: for a word y
// holding one payload bit per byte (y & 0x0101...), the product
// y * 0x0102040810204080 places byte k's bit at position 56+k, and every
// partial product lands on a distinct bit (8a+7b+7 decomposes uniquely for
// a,b in 0..7), so the multiply never carries. One multiply therefore
// moves eight lanes' worth of one bit — 8x fewer operations than the
// per-lane bit loops they replace, and branch-free.

const (
	xposeMask = 0x0101010101010101
	xposeMul  = 0x0102040810204080
)

// GatherBus reads a bus (up to 16 wires) into per-lane values:
// out[l] bit i = wire bus[i] in lane l. It replaces 64 ReadBusLane calls.
func (m *Machine64) GatherBus(bus []netlist.WireID, out *[64]uint16) {
	n := len(bus)
	if n > 16 {
		panic("sim: GatherBus supports at most 16 wires")
	}
	var planes [16]uint64
	for i := 0; i < n; i++ {
		planes[i] = m.values[bus[i]]
	}
	for g := 0; g < 8; g++ {
		sh := uint(8 * g)
		var zlo, zhi uint64
		for i := 0; i < n && i < 8; i++ {
			zlo |= (planes[i] >> sh & 0xFF) << uint(8*i)
		}
		for i := 8; i < n; i++ {
			zhi |= (planes[i] >> sh & 0xFF) << uint(8*(i-8))
		}
		for k := 0; k < 8; k++ {
			v := uint16((zlo >> uint(k) & xposeMask) * xposeMul >> 56)
			if n > 8 {
				v |= uint16((zhi>>uint(k)&xposeMask)*xposeMul>>56) << 8
			}
			out[8*g+k] = v
		}
	}
}

// ScatterBus drives a bus (up to 16 wires) from per-lane values:
// wire bus[i] carries bit i of each lane's value. It replaces the per-lane
// plane-assembly loops in the environments.
func (m *Machine64) ScatterBus(bus []netlist.WireID, vals *[64]uint16) {
	n := len(bus)
	if n > 16 {
		panic("sim: ScatterBus supports at most 16 wires")
	}
	var planes [16]uint64
	for g := 0; g < 8; g++ {
		var lo, hi uint64
		for k := 0; k < 8; k++ {
			v := vals[8*g+k]
			lo |= uint64(v&0xFF) << uint(8*k)
			hi |= uint64(v>>8) << uint(8*k)
		}
		sh := uint(8 * g)
		for i := 0; i < n && i < 8; i++ {
			planes[i] |= (lo >> uint(i) & xposeMask) * xposeMul >> 56 << sh
		}
		for i := 8; i < n; i++ {
			planes[i] |= (hi >> uint(i-8) & xposeMask) * xposeMul >> 56 << sh
		}
	}
	for i, w := range bus {
		m.values[w] = planes[i]
	}
}
