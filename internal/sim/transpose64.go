package sim

import "repro/internal/netlist"

// Bus transposition between the machine's bit-plane representation (one
// uint64 lane word per wire, bit l = lane 64g+l of group g) and the
// lane-major representation the behavioural memory environments work in
// (one bus value per lane).
//
// Both directions use the carry-free multiply transpose: for a word y
// holding one payload bit per byte (y & 0x0101...), the product
// y * 0x0102040810204080 places byte k's bit at position 56+k, and every
// partial product lands on a distinct bit (8a+7b+7 decomposes uniquely for
// a,b in 0..7), so the multiply never carries. One multiply therefore
// moves eight lanes' worth of one bit — 8x fewer operations than the
// per-lane bit loops they replace, and branch-free.
//
// The plane<->lane kernels below operate on one 64-lane group; MachineW
// applies them per group, which keeps the wide-word paths allocation-free
// and reuses the exact 64-lane transpose the property/fuzz tests pin down.

const (
	xposeMask = 0x0101010101010101
	xposeMul  = 0x0102040810204080
)

// gatherPlanes transposes n bit planes (plane i bit l = wire i, lane l)
// into 64 lane values: out[l] bit i = planes[i] bit l.
func gatherPlanes(planes *[16]uint64, n int, out *[64]uint16) {
	if n <= 8 {
		// Narrow buses (the data-memory address and data paths are 8 bits
		// on both cores) skip the high-byte half of the transpose entirely.
		for g := 0; g < 8; g++ {
			sh := uint(8 * g)
			var zlo uint64
			for i := 0; i < n; i++ {
				zlo |= (planes[i] >> sh & 0xFF) << uint(8*i)
			}
			for k := 0; k < 8; k++ {
				out[8*g+k] = uint16((zlo >> uint(k) & xposeMask) * xposeMul >> 56)
			}
		}
		return
	}
	for g := 0; g < 8; g++ {
		sh := uint(8 * g)
		var zlo, zhi uint64
		for i := 0; i < 8; i++ {
			zlo |= (planes[i] >> sh & 0xFF) << uint(8*i)
		}
		for i := 8; i < n; i++ {
			zhi |= (planes[i] >> sh & 0xFF) << uint(8*(i-8))
		}
		for k := 0; k < 8; k++ {
			v := uint16((zlo >> uint(k) & xposeMask) * xposeMul >> 56)
			v |= uint16((zhi>>uint(k)&xposeMask)*xposeMul>>56) << 8
			out[8*g+k] = v
		}
	}
}

// scatterPlanes transposes 64 lane values into n bit planes:
// planes[i] bit l = vals[l] bit i.
func scatterPlanes(vals *[64]uint16, n int, planes *[16]uint64) {
	for i := 0; i < n; i++ {
		planes[i] = 0
	}
	if n <= 8 {
		// Narrow buses never populate the high-byte half, so neither its
		// assembly nor its plane extraction runs.
		for g := 0; g < 8; g++ {
			var lo uint64
			for k := 0; k < 8; k++ {
				lo |= uint64(vals[8*g+k]&0xFF) << uint(8*k)
			}
			sh := uint(8 * g)
			for i := 0; i < n; i++ {
				planes[i] |= (lo >> uint(i) & xposeMask) * xposeMul >> 56 << sh
			}
		}
		return
	}
	for g := 0; g < 8; g++ {
		var lo, hi uint64
		for k := 0; k < 8; k++ {
			v := vals[8*g+k]
			lo |= uint64(v&0xFF) << uint(8*k)
			hi |= uint64(v>>8) << uint(8*k)
		}
		sh := uint(8 * g)
		for i := 0; i < 8; i++ {
			planes[i] |= (lo >> uint(i) & xposeMask) * xposeMul >> 56 << sh
		}
		for i := 8; i < n; i++ {
			planes[i] |= (hi >> uint(i-8) & xposeMask) * xposeMul >> 56 << sh
		}
	}
}

// GatherBus reads a bus (up to 16 wires) into per-lane values:
// out[l] bit i = wire bus[i] in lane l. It replaces 64 ReadBusLane calls.
func (m *Machine64) GatherBus(bus []netlist.WireID, out *[64]uint16) {
	m.GatherBusG(bus, 0, out)
}

// ScatterBus drives a bus (up to 16 wires) from per-lane values:
// wire bus[i] carries bit i of each lane's value. It replaces the per-lane
// plane-assembly loops in the environments.
func (m *Machine64) ScatterBus(bus []netlist.WireID, vals *[64]uint16) {
	m.ScatterBusG(bus, 0, vals)
}

// GatherBusG reads a bus (up to 16 wires) for lane group g:
// out[l] bit i = wire bus[i] in lane 64g+l.
func (m *MachineW) GatherBusG(bus []netlist.WireID, g int, out *[64]uint16) {
	n := len(bus)
	if n > 16 {
		panic("sim: GatherBusG supports at most 16 wires")
	}
	var planes [16]uint64
	for i := 0; i < n; i++ {
		planes[i] = m.values[int(bus[i])*m.W+g]
	}
	gatherPlanes(&planes, n, out)
}

// ScatterBusG drives a bus (up to 16 wires) for lane group g from per-lane
// values: wire bus[i] carries bit i of lane 64g+l's value vals[l].
func (m *MachineW) ScatterBusG(bus []netlist.WireID, g int, vals *[64]uint16) {
	n := len(bus)
	if n > 16 {
		panic("sim: ScatterBusG supports at most 16 wires")
	}
	var planes [16]uint64
	scatterPlanes(vals, n, &planes)
	for i, w := range bus {
		m.values[int(w)*m.W+g] = planes[i]
	}
}

// GatherLanes reads a bus (up to 16 wires) across the active lanes:
// out[l] bit i = wire bus[i] in lane l. len(out) must be 64·W; entries
// beyond ActiveLanes() are left untouched.
func (m *MachineW) GatherLanes(bus []netlist.WireID, out []uint16) {
	for g := 0; g < m.ag; g++ {
		m.GatherBusG(bus, g, (*[64]uint16)(out[g*64:]))
	}
}

// ScatterLanes drives a bus (up to 16 wires) across the active lanes from
// per-lane values. len(vals) must be 64·W; entries beyond ActiveLanes()
// are ignored.
func (m *MachineW) ScatterLanes(bus []netlist.WireID, vals []uint16) {
	for g := 0; g < m.ag; g++ {
		m.ScatterBusG(bus, g, (*[64]uint16)(vals[g*64:]))
	}
}
