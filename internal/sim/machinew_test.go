package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/netlist"
)

var testWidths = []int{1, 2, 4}

// TestMachineWMatchesMachine64Random: a width-W machine must agree, wire
// for wire and lane group for lane group, with an independent Machine64
// driven by the same per-group stimuli — the W=1 kernel is the proven
// reference, so this pins evalProgram4 and the generic wide fallback to
// it on random circuits, per-lane inputs and per-lane fault injections.
func TestMachineWMatchesMachine64Random(t *testing.T) {
	for _, w := range testWidths {
		rng := rand.New(rand.NewSource(int64(4242 + w)))
		for trial := 0; trial < 6; trial++ {
			nl := randomSyncCircuit(rng)
			wide, err := NewMachineW(nl, w)
			if err != nil {
				t.Fatal(err)
			}
			refs := make([]*Machine64, w)
			for g := range refs {
				if refs[g], err = NewMachine64(nl); err != nil {
					t.Fatal(err)
				}
			}
			for cyc := 0; cyc < 24; cyc++ {
				for _, in := range nl.Inputs {
					for g := 0; g < w; g++ {
						v := rng.Uint64()
						wide.SetLaneWord(in, g, v)
						refs[g].SetLanes(in, v)
					}
				}
				if cyc == 3 && len(nl.FFs) > 0 {
					ff := rng.Intn(len(nl.FFs))
					lane := rng.Intn(64 * w)
					wide.FlipLane(ff, lane)
					refs[lane>>6].MachineW.FlipLane(ff, lane&63)
				}
				wide.Settle(nil)
				for g := 0; g < w; g++ {
					refs[g].Settle(nil)
				}
				for wid := 0; wid < nl.NumWires(); wid++ {
					for g := 0; g < w; g++ {
						got := wide.LaneWord(netlist.WireID(wid), g)
						want := refs[g].Lanes(netlist.WireID(wid))
						if got != want {
							t.Fatalf("W=%d trial %d cycle %d wire %d group %d: wide %016x, Machine64 %016x",
								w, trial, cyc, wid, g, got, want)
						}
					}
				}
				wide.CommitFFs()
				for g := 0; g < w; g++ {
					refs[g].CommitFFs()
				}
			}
		}
	}
}

// TestDivergenceMaskGMatchesMachine64: for every width, DivergenceMaskG
// against a golden row must equal the Machine64 DivergenceMask of an
// identically-driven 64-lane reference for the matching lane group, with
// FlipLane as the divergence source.
func TestDivergenceMaskGMatchesMachine64(t *testing.T) {
	for _, w := range testWidths {
		rng := rand.New(rand.NewSource(int64(77 + w)))
		nl := randomSyncCircuit(rng)
		if len(nl.FFs) == 0 {
			t.Fatal("need FFs")
		}
		// Golden row: the settled wire values of an undisturbed scalar run.
		golden := New(nl)
		ins := make([]bool, len(nl.Inputs))
		for i := range ins {
			ins[i] = rng.Intn(2) == 0
		}
		golden.SetInputState(ins)
		golden.Settle(NopEnv)
		tr := NewTrace(nl.NumWires())
		tr.Append(golden.Values())
		row := tr.Row(0)

		wide, err := NewMachineW(nl, w)
		if err != nil {
			t.Fatal(err)
		}
		refs := make([]*Machine64, w)
		for g := range refs {
			if refs[g], err = NewMachine64(nl); err != nil {
				t.Fatal(err)
			}
		}
		wide.LoadInputs(ins)
		for g := 0; g < w; g++ {
			refs[g].LoadInputs(ins)
		}
		// Flip a few random (FF, lane) pairs in both machines.
		for k := 0; k < 3*w; k++ {
			ff := rng.Intn(len(nl.FFs))
			lane := rng.Intn(64 * w)
			wide.FlipLane(ff, lane)
			refs[lane>>6].MachineW.FlipLane(ff, lane&63)
		}
		wide.Settle(nil)
		for g := 0; g < w; g++ {
			refs[g].Settle(nil)
		}
		for _, interest := range []uint64{^uint64(0), 0xF0F0F0F0F0F0F0F0, 1, 0} {
			for g := 0; g < w; g++ {
				got := wide.DivergenceMaskG(row, interest, g)
				want := refs[g].DivergenceMask(row, interest)
				if got != want {
					t.Fatalf("W=%d group %d interest %016x: wide %016x, Machine64 %016x",
						w, g, interest, got, want)
				}
			}
		}
	}
}

// TestWideTransposeRoundTrip: GatherLanes/ScatterLanes across widths must
// agree with the per-lane reference (ReadBusLane) and round-trip exactly.
func TestWideTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for _, w := range testWidths {
		for width := 1; width <= 16; width += 3 {
			b := netlist.NewBuilder("busw")
			bus := make([]netlist.WireID, width)
			for i := range bus {
				bus[i] = b.Input("")
			}
			b.MarkOutput(bus[0])
			m, err := NewMachineW(b.MustNetlist(), w)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 4; trial++ {
				for _, wire := range bus {
					for g := 0; g < w; g++ {
						m.SetLaneWord(wire, g, rng.Uint64())
					}
				}
				got := make([]uint16, 64*w)
				m.GatherLanes(bus, got)
				for l := 0; l < 64*w; l++ {
					if want := uint16(m.ReadBusLane(bus, l)); got[l] != want {
						t.Fatalf("W=%d width %d lane %d: GatherLanes %04x, ReadBusLane %04x", w, width, l, got[l], want)
					}
				}
				vals := make([]uint16, 64*w)
				for l := range vals {
					vals[l] = uint16(rng.Uint32()) & (1<<uint(width) - 1)
				}
				m.ScatterLanes(bus, vals)
				back := make([]uint16, 64*w)
				m.GatherLanes(bus, back)
				for l := range vals {
					if back[l] != vals[l] {
						t.Fatalf("W=%d width %d lane %d: round trip %04x, want %04x", w, width, l, back[l], vals[l])
					}
				}
			}
		}
	}
}

// FuzzGatherScatterW fuzzes the wide gather/scatter transpose against the
// bit-by-bit reference: scatter arbitrary lane values at an arbitrary
// width, check every plane bit, gather back, demand the exact input.
func FuzzGatherScatterW(f *testing.F) {
	f.Add(uint8(4), uint8(11), uint64(0xDEADBEEFCAFEF00D), uint64(0x0123456789ABCDEF))
	f.Add(uint8(1), uint8(16), ^uint64(0), uint64(0))
	f.Add(uint8(2), uint8(1), uint64(1), uint64(1<<63))
	f.Fuzz(func(t *testing.T, wRaw, widthRaw uint8, seedA, seedB uint64) {
		w := int(wRaw)%4 + 1
		width := int(widthRaw)%16 + 1
		b := netlist.NewBuilder("fuzzbus")
		bus := make([]netlist.WireID, width)
		for i := range bus {
			bus[i] = b.Input("")
		}
		b.MarkOutput(bus[0])
		m, err := NewMachineW(b.MustNetlist(), w)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(seedA ^ seedB)))
		vals := make([]uint16, 64*w)
		for l := range vals {
			vals[l] = uint16(rng.Uint32()) & (1<<uint(width) - 1)
		}
		m.ScatterLanes(bus, vals)
		for i, wire := range bus {
			for l := 0; l < 64*w; l++ {
				got := m.LaneWord(wire, l>>6)>>(uint(l)&63)&1 == 1
				want := vals[l]>>uint(i)&1 == 1
				if got != want {
					t.Fatalf("W=%d width %d wire %d lane %d: plane bit %v, want %v", w, width, i, l, got, want)
				}
			}
		}
		back := make([]uint16, 64*w)
		m.GatherLanes(bus, back)
		for l := range vals {
			if back[l] != vals[l] {
				t.Fatalf("W=%d width %d lane %d: gather %04x, want %04x", w, width, l, back[l], vals[l])
			}
		}
	})
}

// TestCompactLanesMatchesFullWidth: compacting a subset of lanes must (a)
// move each listed lane's state verbatim into its packed slot, and (b)
// keep the compacted machine cycle-accurate against a full-width machine
// that never compacted — lane i of the compacted machine tracks lane
// src[i] of the reference under identical per-lane stimuli. The subset
// sizes are chosen to land on every active-group count, so the unrolled
// one-, two- and three-group kernels are all exercised against the proven
// four-group one.
func TestCompactLanesMatchesFullWidth(t *testing.T) {
	const w = 4
	for _, n := range []int{3, 64, 65, 128, 129, 192, 200} {
		rng := rand.New(rand.NewSource(int64(909 + n)))
		nl := randomSyncCircuit(rng)
		wide, err := NewMachineW(nl, w)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewMachineW(nl, w)
		if err != nil {
			t.Fatal(err)
		}

		// Warm both machines with identical random stimuli.
		step := func() {
			for _, in := range nl.Inputs {
				for g := 0; g < w; g++ {
					v := rng.Uint64()
					wide.SetLaneWord(in, g, v)
					ref.SetLaneWord(in, g, v)
				}
			}
			wide.Settle(nil)
			ref.Settle(nil)
			wide.CommitFFs()
			ref.CommitFFs()
		}
		for cyc := 0; cyc < 6; cyc++ {
			step()
		}

		// Random strictly increasing lane subset of size n.
		perm := rng.Perm(64 * w)[:n]
		sort.Ints(perm)
		src := make([]uint16, n)
		for i, l := range perm {
			src[i] = uint16(l)
		}
		wide.CompactLanes(src)
		if got, want := wide.ActiveGroups(), (n+63)/64; got != want {
			t.Fatalf("n=%d: ActiveGroups = %d, want %d", n, got, want)
		}

		laneBit := func(m *MachineW, wid, lane int) uint64 {
			return m.LaneWord(netlist.WireID(wid), lane>>6) >> (uint(lane) & 63) & 1
		}
		check := func(stage string) {
			for wid := 0; wid < nl.NumWires(); wid++ {
				for i, l := range src {
					if got, want := laneBit(wide, wid, i), laneBit(ref, wid, int(l)); got != want {
						t.Fatalf("n=%d %s wire %d: compacted lane %d = %d, reference lane %d = %d",
							n, stage, wid, i, got, l, want)
					}
				}
			}
		}
		check("after compaction")

		// Continue both machines: the compacted one sees, per packed lane,
		// exactly the stimulus its source lane gets in the reference.
		for cyc := 0; cyc < 8; cyc++ {
			for _, in := range nl.Inputs {
				var words [w]uint64
				for g := 0; g < w; g++ {
					v := rng.Uint64()
					ref.SetLaneWord(in, g, v)
					words[g] = v
				}
				var packed [w]uint64
				for i, l := range src {
					packed[i>>6] |= words[l>>6] >> (l & 63) & 1 << (uint(i) & 63)
				}
				for g := 0; g < wide.ActiveGroups(); g++ {
					wide.SetLaneWord(in, g, packed[g])
				}
			}
			if cyc == 2 && len(nl.FFs) > 0 {
				ff := rng.Intn(len(nl.FFs))
				i := rng.Intn(n)
				wide.FlipLane(ff, i)
				ref.FlipLane(ff, int(src[i]))
			}
			wide.Settle(nil)
			ref.Settle(nil)
			check("settled")
			wide.CommitFFs()
			ref.CommitFFs()
		}

		// LoadState must restore the full width.
		wide.LoadState(make([]bool, len(nl.FFs)))
		if wide.ActiveGroups() != w {
			t.Fatalf("LoadState did not restore the full width: %d", wide.ActiveGroups())
		}
	}
}
