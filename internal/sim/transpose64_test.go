package sim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// TestBusTranspose sweeps every supported bus width and checks both
// transpose directions against the per-lane reference (ReadBusLane and
// bit-by-bit plane assembly) on random lane data.
func TestBusTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for width := 1; width <= 16; width++ {
		b := netlist.NewBuilder("bus")
		bus := make([]netlist.WireID, width)
		for i := range bus {
			bus[i] = b.Input("")
		}
		b.MarkOutput(bus[0])
		m, err := NewMachine64(b.MustNetlist())
		if err != nil {
			t.Fatal(err)
		}

		for trial := 0; trial < 8; trial++ {
			for _, w := range bus {
				m.SetLanes(w, rng.Uint64())
			}

			var got [64]uint16
			m.GatherBus(bus, &got)
			for l := 0; l < 64; l++ {
				if want := uint16(m.ReadBusLane(bus, l)); got[l] != want {
					t.Fatalf("width %d lane %d: GatherBus %04x, ReadBusLane %04x", width, l, got[l], want)
				}
			}

			var vals [64]uint16
			for l := range vals {
				vals[l] = uint16(rng.Uint32()) & (1<<uint(width) - 1)
			}
			m.ScatterBus(bus, &vals)
			for i, w := range bus {
				var want uint64
				for l := 0; l < 64; l++ {
					want |= uint64(vals[l]>>uint(i)&1) << uint(l)
				}
				if m.Lanes(w) != want {
					t.Fatalf("width %d wire %d: ScatterBus %016x, want %016x", width, i, m.Lanes(w), want)
				}
			}

			// Round trip: gather back exactly what was scattered.
			m.GatherBus(bus, &got)
			if got != vals {
				t.Fatalf("width %d: scatter/gather round trip diverged", width)
			}
		}
	}
}
