package sim

// Code in this file mirrors evalProgram4 (machinew.go) at narrower active
// widths. The batched campaign engine compacts retired lanes out of a
// batch (MachineW.CompactLanes), so a 256-lane machine spends the tail of
// every batch with only one or two live groups — these kernels keep that
// tail on unrolled straight-line code instead of the generic per-group
// fallback. Edit evalProgram4 first and keep these in lockstep; the
// cross-width property tests in machinew_test.go pin the equivalence.

import "repro/internal/cell"

// at2 views two consecutive lane words as one 128-lane wide word.
func at2(v []uint64, i int32) *[2]uint64 { return (*[2]uint64)(v[i:]) }

// at3 views three consecutive lane words as one 192-lane wide word.
func at3(v []uint64, i int32) *[3]uint64 { return (*[3]uint64)(v[i:]) }

// evalProgram2 is the two-group (128-lane) dense kernel.
func evalProgram2(ops []op64, runs []opRun, v []uint64) {
	for _, r := range runs {
		seg := ops[r.start:r.end]
		switch r.kind {
		case cell.TIE0:
			for i := range seg {
				d := at2(v, seg[i].out)
				d[0], d[1] = 0, 0
			}
		case cell.TIE1:
			for i := range seg {
				d := at2(v, seg[i].out)
				d[0], d[1] = ^uint64(0), ^uint64(0)
			}
		case cell.BUF:
			for i := range seg {
				o := &seg[i]
				a, d := at2(v, o.in[0]), at2(v, o.out)
				d[0], d[1] = a[0], a[1]
			}
		case cell.INV:
			for i := range seg {
				o := &seg[i]
				a, d := at2(v, o.in[0]), at2(v, o.out)
				d[0], d[1] = ^a[0], ^a[1]
			}
		case cell.AND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = a[0]&b[0], a[1]&b[1]
			}
		case cell.AND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = a[0]&b[0]&c[0], a[1]&b[1]&c[1]
			}
		case cell.AND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0], d[1] = a[0]&b[0]&c[0]&e[0], a[1]&b[1]&c[1]&e[1]
			}
		case cell.NAND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = ^(a[0] & b[0]), ^(a[1] & b[1])
			}
		case cell.NAND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = ^(a[0] & b[0] & c[0]), ^(a[1] & b[1] & c[1])
			}
		case cell.NAND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0], d[1] = ^(a[0] & b[0] & c[0] & e[0]), ^(a[1] & b[1] & c[1] & e[1])
			}
		case cell.OR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = a[0]|b[0], a[1]|b[1]
			}
		case cell.OR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = a[0]|b[0]|c[0], a[1]|b[1]|c[1]
			}
		case cell.OR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0], d[1] = a[0]|b[0]|c[0]|e[0], a[1]|b[1]|c[1]|e[1]
			}
		case cell.NOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = ^(a[0] | b[0]), ^(a[1] | b[1])
			}
		case cell.NOR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = ^(a[0] | b[0] | c[0]), ^(a[1] | b[1] | c[1])
			}
		case cell.NOR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0], d[1] = ^(a[0] | b[0] | c[0] | e[0]), ^(a[1] | b[1] | c[1] | e[1])
			}
		case cell.XOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = a[0]^b[0], a[1]^b[1]
			}
		case cell.XNOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.out)
				d[0], d[1] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1])
			}
		case cell.MUX2:
			for i := range seg {
				o := &seg[i]
				a, b, s, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0] = a[0] ^ (s[0] & (a[0] ^ b[0]))
				d[1] = a[1] ^ (s[1] & (a[1] ^ b[1]))
			}
		case cell.AOI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = ^((a[0] & b[0]) | c[0]), ^((a[1] & b[1]) | c[1])
			}
		case cell.AOI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0] = ^((a[0] & b[0]) | (c[0] & e[0]))
				d[1] = ^((a[1] & b[1]) | (c[1] & e[1]))
			}
		case cell.OAI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0], d[1] = ^((a[0] | b[0]) & c[0]), ^((a[1] | b[1]) & c[1])
			}
		case cell.OAI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.in[3]), at2(v, o.out)
				d[0] = ^((a[0] | b[0]) & (c[0] | e[0]))
				d[1] = ^((a[1] | b[1]) & (c[1] | e[1]))
			}
		case cell.MAJ3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at2(v, o.in[0]), at2(v, o.in[1]), at2(v, o.in[2]), at2(v, o.out)
				d[0] = (a[0] & b[0]) | (a[0] & c[0]) | (b[0] & c[0])
				d[1] = (a[1] & b[1]) | (a[1] & c[1]) | (b[1] & c[1])
			}
		default:
			for i := range seg {
				o := &seg[i]
				for g := int32(0); g < 2; g++ {
					v[o.out+g] = evalOpG(o, v, g)
				}
			}
		}
	}
}

// evalProgram3 is the three-group (192-lane) dense kernel.
func evalProgram3(ops []op64, runs []opRun, v []uint64) {
	for _, r := range runs {
		seg := ops[r.start:r.end]
		switch r.kind {
		case cell.TIE0:
			for i := range seg {
				d := at3(v, seg[i].out)
				d[0], d[1], d[2] = 0, 0, 0
			}
		case cell.TIE1:
			for i := range seg {
				d := at3(v, seg[i].out)
				d[0], d[1], d[2] = ^uint64(0), ^uint64(0), ^uint64(0)
			}
		case cell.BUF:
			for i := range seg {
				o := &seg[i]
				a, d := at3(v, o.in[0]), at3(v, o.out)
				d[0], d[1], d[2] = a[0], a[1], a[2]
			}
		case cell.INV:
			for i := range seg {
				o := &seg[i]
				a, d := at3(v, o.in[0]), at3(v, o.out)
				d[0], d[1], d[2] = ^a[0], ^a[1], ^a[2]
			}
		case cell.AND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]&b[0], a[1]&b[1], a[2]&b[2]
			}
		case cell.AND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]&b[0]&c[0], a[1]&b[1]&c[1], a[2]&b[2]&c[2]
			}
		case cell.AND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]&b[0]&c[0]&e[0], a[1]&b[1]&c[1]&e[1], a[2]&b[2]&c[2]&e[2]
			}
		case cell.NAND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2])
			}
		case cell.NAND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] & b[0] & c[0]), ^(a[1] & b[1] & c[1]), ^(a[2] & b[2] & c[2])
			}
		case cell.NAND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] & b[0] & c[0] & e[0]), ^(a[1] & b[1] & c[1] & e[1]), ^(a[2] & b[2] & c[2] & e[2])
			}
		case cell.OR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]|b[0], a[1]|b[1], a[2]|b[2]
			}
		case cell.OR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]|b[0]|c[0], a[1]|b[1]|c[1], a[2]|b[2]|c[2]
			}
		case cell.OR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]|b[0]|c[0]|e[0], a[1]|b[1]|c[1]|e[1], a[2]|b[2]|c[2]|e[2]
			}
		case cell.NOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2])
			}
		case cell.NOR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] | b[0] | c[0]), ^(a[1] | b[1] | c[1]), ^(a[2] | b[2] | c[2])
			}
		case cell.NOR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] | b[0] | c[0] | e[0]), ^(a[1] | b[1] | c[1] | e[1]), ^(a[2] | b[2] | c[2] | e[2])
			}
		case cell.XOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = a[0]^b[0], a[1]^b[1], a[2]^b[2]
			}
		case cell.XNOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.out)
				d[0], d[1], d[2] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2])
			}
		case cell.MUX2:
			for i := range seg {
				o := &seg[i]
				a, b, s, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0] = a[0] ^ (s[0] & (a[0] ^ b[0]))
				d[1] = a[1] ^ (s[1] & (a[1] ^ b[1]))
				d[2] = a[2] ^ (s[2] & (a[2] ^ b[2]))
			}
		case cell.AOI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = ^((a[0] & b[0]) | c[0]), ^((a[1] & b[1]) | c[1]), ^((a[2] & b[2]) | c[2])
			}
		case cell.AOI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0] = ^((a[0] & b[0]) | (c[0] & e[0]))
				d[1] = ^((a[1] & b[1]) | (c[1] & e[1]))
				d[2] = ^((a[2] & b[2]) | (c[2] & e[2]))
			}
		case cell.OAI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0], d[1], d[2] = ^((a[0] | b[0]) & c[0]), ^((a[1] | b[1]) & c[1]), ^((a[2] | b[2]) & c[2])
			}
		case cell.OAI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.in[3]), at3(v, o.out)
				d[0] = ^((a[0] | b[0]) & (c[0] | e[0]))
				d[1] = ^((a[1] | b[1]) & (c[1] | e[1]))
				d[2] = ^((a[2] | b[2]) & (c[2] | e[2]))
			}
		case cell.MAJ3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at3(v, o.in[0]), at3(v, o.in[1]), at3(v, o.in[2]), at3(v, o.out)
				d[0] = (a[0] & b[0]) | (a[0] & c[0]) | (b[0] & c[0])
				d[1] = (a[1] & b[1]) | (a[1] & c[1]) | (b[1] & c[1])
				d[2] = (a[2] & b[2]) | (a[2] & c[2]) | (b[2] & c[2])
			}
		default:
			for i := range seg {
				o := &seg[i]
				for g := int32(0); g < 3; g++ {
					v[o.out+g] = evalOpG(o, v, g)
				}
			}
		}
	}
}
