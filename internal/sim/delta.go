package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// DeltaState is the sparse-lane-aware cone-delta evaluator (ROADMAP item
// 2(c)): instead of re-evaluating every gate every cycle, it tracks each
// wire's XOR difference against the recorded golden trace and re-evaluates
// a gate only while one of its input deltas is nonzero or just changed.
// Faulty lanes differ from the golden run only inside the fanout cones of
// the injected flip-flops, so the per-level frontier worklists stay small
// — and as lanes reconverge the frontier empties gate by gate, which is
// the fine-grained counterpart of the campaign engine's whole-lane
// convergence early-exit.
//
// Representation: for every wire w and lane group g,
//
//	actual(w, g) = broadcast(golden(w, cyc)) ^ delta[w*W+g]
//
// where golden(w, cyc) is the recorded trace bit for the cycle being
// settled. A zero delta word means "all 64 lanes of this group match the
// golden run". PR 5 recorded that a naive per-wire dirty bitset under the
// 64-lane activity union was 36% slower than dense dispatch; the delta set
// here is therefore tracked per lane group word (zero-testable in one
// compare) and the engine is expected to be abandoned for dense dispatch
// when frontier occupancy crosses a measured threshold (the caller polls
// LastEvaluated against its threshold and calls Materialize).
//
// Because gates are nonlinear, a gate with a nonzero input delta must be
// re-evaluated every cycle (its golden inputs keep moving underneath the
// delta); the worklist discipline is therefore: after evaluating a gate,
// push its consumers iff the output delta is nonzero or changed. Combined
// with the commit scan (which re-pushes every flip-flop whose Q delta is
// nonzero or changed) and the environment diff (same rule for env-written
// wires), induction over levels gives exactly the dense fixpoint.
type DeltaState struct {
	m   *MachineW
	tr  *Trace
	env EnvW
	w   int

	// Per-op static data. ops aliases the machine program (indices
	// pre-scaled by W); outWire/inWire hold the unscaled wire ids for
	// golden-row lookups; envOp marks ops inside the environment cone.
	ops     []op64
	outWire []int32
	inWire  [][4]int32
	envOp   []bool
	nLevels int

	// consOff/cons is a CSR adjacency: consumers (op indices) of each
	// unscaled wire.
	consOff []int32
	cons    []int32

	qToD      []int32 // per wire: driving D wire if FF Q, else -1
	envWires  []int32 // env-written wires (unscaled)
	readWires []int32 // env-read wires, refreshed before the env call

	delta []uint64 // NumWires*W lane-group delta words

	// Two-bucket per-level frontier: bucketA holds pure ops (settle pass
	// 1), bucketB ops inside the environment cone (evaluated only after
	// the environment ran). stamp/gen deduplicate pushes; gen increments
	// once per completed settle, so pushes from commit, injection and the
	// env diff all land exactly once in the next settle.
	bucketA [][]int32
	bucketB [][]int32
	stamp   []uint32
	gen     uint32

	qOr   []uint64 // per group: OR over FFs of the Q deltas (divergence)
	dNext []uint64 // commit staging: one FF's D can be another FF's Q wire

	cyc       int  // cycle the next Step will settle
	stepped   bool // at least one Step since Reset
	lastEval  int  // ops evaluated by the most recent Step
	skipped   uint64
	denseCost int // gate evaluations one dense Step costs (both passes)
}

// NewDeltaState builds a cone-delta evaluator for machine m against golden
// trace tr, driven by env. reads lists every wire the environment READS
// (it is refreshed to actual lane values before each env call); the write
// set is taken from the machine's SetEnvWrites declaration. It returns an
// error when the netlist/environment combination violates the engine's
// contract — callers then stay on the dense path:
//
//   - SetEnvWrites must have been called (otherwise the env write set is
//     unknown), and
//   - no env-read wire may lie inside the env-written cone (the engine
//     refreshes read wires from their settle-pass-1 values, which only
//     equals the final value outside that cone). Both CPU cores satisfy
//     this by construction: their memory address/data/WE buses are
//     functions of registered state only.
func NewDeltaState(m *MachineW, tr *Trace, env EnvW, reads ...[]netlist.WireID) (*DeltaState, error) {
	if m.envOps == nil || m.envCone == nil {
		return nil, fmt.Errorf("sim: delta engine requires SetEnvWrites")
	}
	if tr.NumWires != m.NL.NumWires() {
		return nil, fmt.Errorf("sim: delta engine trace has %d wires, machine %d", tr.NumWires, m.NL.NumWires())
	}
	d := &DeltaState{m: m, tr: tr, env: env, w: m.W, ops: m.ops}
	for _, ws := range reads {
		for _, w := range ws {
			if m.envCone[int(w)*m.W] {
				return nil, fmt.Errorf("sim: delta engine unsupported: env-read wire %d is inside the env-written cone", w)
			}
			d.readWires = append(d.readWires, int32(w))
		}
	}
	nw := m.NL.NumWires()
	d.outWire = make([]int32, len(m.ops))
	d.inWire = make([][4]int32, len(m.ops))
	d.envOp = m.envOpFlag
	counts := make([]int32, nw+1)
	for i := range m.ops {
		o := &m.ops[i]
		d.outWire[i] = o.out / int32(m.W)
		if int(o.level) >= d.nLevels {
			d.nLevels = int(o.level) + 1
		}
		for p := 0; p < int(o.numPins); p++ {
			w := o.in[p] / int32(m.W)
			d.inWire[i][p] = w
			counts[w+1]++
		}
	}
	d.consOff = make([]int32, nw+1)
	for w := 0; w < nw; w++ {
		d.consOff[w+1] = d.consOff[w] + counts[w+1]
	}
	d.cons = make([]int32, d.consOff[nw])
	fill := make([]int32, nw)
	copy(fill, d.consOff[:nw])
	for i := range m.ops {
		o := &m.ops[i]
		for p := 0; p < int(o.numPins); p++ {
			w := d.inWire[i][p]
			d.cons[fill[w]] = int32(i)
			fill[w]++
		}
	}
	d.qToD = make([]int32, nw)
	for i := range d.qToD {
		d.qToD[i] = -1
	}
	for i := range m.ffQ {
		d.qToD[m.ffQ[i]] = m.ffD[i]
	}
	for _, w := range m.envWrites {
		d.envWires = append(d.envWires, int32(w))
	}
	d.delta = make([]uint64, nw*m.W)
	d.bucketA = make([][]int32, d.nLevels)
	d.bucketB = make([][]int32, d.nLevels)
	d.stamp = make([]uint32, len(m.ops))
	d.gen = 1
	d.qOr = make([]uint64, m.W)
	d.dNext = make([]uint64, len(m.ffD)*m.W)
	d.denseCost = len(m.ops) + len(m.envOps)
	return d, nil
}

// Trace returns the golden trace this evaluator was built against.
func (d *DeltaState) Trace() *Trace { return d.tr }

// NumOps returns the gate evaluations one dense Step would cost (both
// settle passes) — the baseline for the skipped-gates accounting and the
// dense-fallback occupancy threshold.
func (d *DeltaState) NumOps() int { return d.denseCost }

// LastEvaluated returns the number of gate evaluations the most recent
// Step performed.
func (d *DeltaState) LastEvaluated() int { return d.lastEval }

// TakeSkipped returns the cumulative count of gate evaluations avoided
// relative to dense stepping since the last call, and resets it.
func (d *DeltaState) TakeSkipped() uint64 {
	s := d.skipped
	d.skipped = 0
	return s
}

// Cycle returns the cycle the next Step will settle.
func (d *DeltaState) Cycle() int { return d.cyc }

// Reset clears every delta (all lanes match the golden run) and positions
// the evaluator at the given cycle. The caller must have loaded the
// matching golden checkpoint into the machine.
func (d *DeltaState) Reset(cycle int) {
	for i := range d.delta {
		d.delta[i] = 0
	}
	for l := 0; l < d.nLevels; l++ {
		d.bucketA[l] = d.bucketA[l][:0]
		d.bucketB[l] = d.bucketB[l][:0]
	}
	d.gen++ // invalidate all stamps
	for g := range d.qOr {
		d.qOr[g] = 0
	}
	d.cyc = cycle
	d.stepped = false
	d.lastEval = 0
}

// rowMask expands a golden trace bit into a full lane word.
func rowMask(row []uint64, w int32) uint64 {
	return -(row[w>>6] >> (uint(w) & 63) & 1)
}

// touch pushes every consumer of a wire into the frontier for the next
// (or current) settle.
func (d *DeltaState) touch(wire int32) {
	for _, opi := range d.cons[d.consOff[wire]:d.consOff[wire+1]] {
		if d.stamp[opi] == d.gen {
			continue
		}
		d.stamp[opi] = d.gen
		lvl := d.ops[opi].level
		if d.envOp[opi] {
			d.bucketB[lvl] = append(d.bucketB[lvl], opi)
		} else {
			d.bucketA[lvl] = append(d.bucketA[lvl], opi)
		}
	}
}

// FlipLane flips flip-flop ffIndex in one lane, delta-space: the injection
// primitive while the evaluator owns the machine state.
func (d *DeltaState) FlipLane(ffIndex, lane int) {
	q := d.m.ffQ[ffIndex]
	d.delta[int(d.m.ffQs[ffIndex])+lane>>6] ^= 1 << (uint(lane) & 63)
	// qOr may now over-report this lane until the next commit recomputes it
	// exactly; that is harmless, because a lane inside its injection window
	// is never eligible for convergence retirement.
	d.qOr[lane>>6] |= 1 << (uint(lane) & 63)
	d.touch(q)
}

// FFLane reads the actual value of flip-flop ffIndex in one lane
// (golden ^ delta at the current cycle).
func (d *DeltaState) FFLane(ffIndex, lane int) bool {
	q := d.m.ffQ[ffIndex]
	row := d.tr.Row(d.cyc)
	gb := row[q>>6]>>(uint(q)&63)&1 == 1
	db := d.delta[int(d.m.ffQs[ffIndex])+lane>>6]>>(uint(lane)&63)&1 == 1
	return gb != db
}

// WireLanesG reconstructs the actual lane word of a flip-flop-driven wire
// for group g at the current cycle (golden ^ delta). Valid at the top of a
// cycle for registered wires (e.g. the core's Halted flag).
func (d *DeltaState) WireLanesG(w netlist.WireID, g int) uint64 {
	return rowMask(d.tr.Row(d.cyc), int32(w)) ^ d.delta[int(w)*d.w+g]
}

// DivergenceMaskG returns, for lane group g, the lanes whose flip-flop
// state differs from the golden run at the current cycle — the delta-space
// equivalent of MachineW.DivergenceMaskG, maintained incrementally by the
// commit scan instead of an O(FFs) compare.
func (d *DeltaState) DivergenceMaskG(g int) uint64 { return d.qOr[g] }

// evalOp re-evaluates one gate in delta space against the golden row.
func (d *DeltaState) evalOp(opi int32, row []uint64) {
	o := &d.ops[opi]
	w := d.w
	np := int(o.numPins)
	var im [4]uint64
	for p := 0; p < np; p++ {
		im[p] = rowMask(row, d.inWire[opi][p])
	}
	ob := rowMask(row, d.outWire[opi])
	outBase := int(o.out)
	changed, nonzero := false, false
	var in [4]uint64
	for g := 0; g < w; g++ {
		for p := 0; p < np; p++ {
			in[p] = im[p] ^ d.delta[int(o.in[p])+g]
		}
		nd := evalOpWords(o, &in) ^ ob
		if nd != d.delta[outBase+g] {
			d.delta[outBase+g] = nd
			changed = true
		}
		if nd != 0 {
			nonzero = true
		}
	}
	if changed || nonzero {
		d.touch(d.outWire[opi])
	}
}

// Step settles and commits one cycle in delta space: frontier pass over
// pure gates, environment refresh/call/diff, frontier pass over env-cone
// gates, then the flip-flop commit scan. Whole levels with no frontier
// entries are skipped outright.
func (d *DeltaState) Step() {
	row := d.tr.Row(d.cyc)
	w := d.w
	evaluated := 0
	// Pass A: pure gates. Levels ascend and a gate only ever pushes
	// consumers at strictly higher levels, so one sweep reaches the
	// fixpoint.
	for lvl := 0; lvl < d.nLevels; lvl++ {
		bucket := d.bucketA[lvl]
		if len(bucket) == 0 {
			continue
		}
		for _, opi := range bucket {
			d.evalOp(opi, row)
		}
		evaluated += len(bucket)
		d.bucketA[lvl] = bucket[:0]
	}
	// Refresh the env-read wires to actual lane values (these wires are
	// outside the env cone, so their pass-A value is final), run the real
	// environment — per-lane memories and write digests update exactly as
	// in dense mode — then convert its writes back into deltas, seeding
	// pass B.
	for _, wire := range d.readWires {
		b := rowMask(row, wire)
		base := int(wire) * w
		for g := 0; g < w; g++ {
			d.m.values[base+g] = b ^ d.delta[base+g]
		}
	}
	d.env.SetInputsW(d.m)
	for _, wire := range d.envWires {
		b := rowMask(row, wire)
		base := int(wire) * w
		changed, nonzero := false, false
		for g := 0; g < w; g++ {
			nd := d.m.values[base+g] ^ b
			if nd != d.delta[base+g] {
				d.delta[base+g] = nd
				changed = true
			}
			if nd != 0 {
				nonzero = true
			}
		}
		if changed || nonzero {
			d.touch(wire)
		}
	}
	// Pass B: gates inside the env cone.
	for lvl := 0; lvl < d.nLevels; lvl++ {
		bucket := d.bucketB[lvl]
		if len(bucket) == 0 {
			continue
		}
		for _, opi := range bucket {
			d.evalOp(opi, row)
		}
		evaluated += len(bucket)
		d.bucketB[lvl] = bucket[:0]
	}
	d.lastEval = evaluated
	if evaluated < d.denseCost {
		d.skipped += uint64(d.denseCost - evaluated)
	}
	d.gen++ // settle done: subsequent pushes belong to the next settle
	// Commit scan: delta_Q <- delta_D for every flip-flop (the golden rows
	// obey row(cyc+1)[Q] == row(cyc)[D], so the delta convention is
	// preserved), re-pushing consumers of live Q wires and accumulating the
	// per-group divergence word. Staged through dNext exactly like the
	// dense CommitFFs: one FF's D wire can be another FF's Q wire, and an
	// in-place scan would hand it the already-committed value.
	for g := range d.qOr {
		d.qOr[g] = 0
	}
	for i := range d.m.ffDs {
		copy(d.dNext[i*w:(i+1)*w], d.delta[int(d.m.ffDs[i]):int(d.m.ffDs[i])+w])
	}
	for i := range d.m.ffQs {
		qbase := int(d.m.ffQs[i])
		changed, nonzero := false, false
		for g := 0; g < w; g++ {
			nd := d.dNext[i*w+g]
			if nd != d.delta[qbase+g] {
				d.delta[qbase+g] = nd
				changed = true
			}
			if nd != 0 {
				nonzero = true
				d.qOr[g] |= nd
			}
		}
		if changed || nonzero {
			d.touch(d.m.ffQ[i])
		}
	}
	d.cyc++
	d.m.Cycle++
	d.stepped = true
}

// Materialize writes every wire's actual lane values into the machine,
// converting the delta representation back to dense state. Valid
// immediately after a Step (the machine then matches what dense stepping
// would hold entering cycle Cycle()); flip-flop Q wires are reconstructed
// through their D wires because the trace row records pre-commit values.
// The delta state is stale afterwards — Reset before reusing it.
//
// Materialize is also valid before the first Step after Reset: the machine
// then still holds the exact dense state the checkpoint load produced, and
// the only live deltas are flip-flop Q flips from FlipLane — which dense
// injection applies by the same XOR. This covers batches that terminate at
// their start cycle (e.g. a fault flipping the halt flag itself).
func (d *DeltaState) Materialize() {
	if !d.stepped {
		for i := range d.m.ffQs {
			qbase := int(d.m.ffQs[i])
			for g := 0; g < d.w; g++ {
				d.m.values[qbase+g] ^= d.delta[qbase+g]
			}
		}
		return
	}
	row := d.tr.Row(d.cyc - 1)
	w := d.w
	nw := d.m.NL.NumWires()
	for wid := 0; wid < nw; wid++ {
		src := int32(wid)
		if dw := d.qToD[wid]; dw >= 0 {
			src = dw
		}
		b := rowMask(row, src)
		base := wid * w
		for g := 0; g < w; g++ {
			d.m.values[base+g] = b ^ d.delta[base+g]
		}
	}
}
