package sim

// Write digests summarise the external-memory write history of a run as a
// chained FNV-1a fold over (address, data) write events. Two runs whose
// digests are equal performed, with overwhelming probability, the same
// write sequence since the point their digests were last equal — the same
// probabilistic guarantee the result-signature classification already
// relies on. The HAFI campaign engines use this to decide memory
// equivalence for the golden-convergence early exit: checkpoints carry the
// digest, restore rewinds it, and a faulty run whose flip-flop state
// matches the golden reference AND whose digest matches the golden digest
// of the same cycle is provably (w.h.p.) benign.

// WriteDigestSeed is the initial digest of a freshly reset system (the
// FNV-1a 64-bit offset basis).
const WriteDigestSeed uint64 = 0xcbf29ce484222325

// fnvPrime64 is the FNV-1a 64-bit prime.
const fnvPrime64 = 1099511628211

// UpdateWriteDigest folds one memory write event (address, data) into the
// chained digest.
func UpdateWriteDigest(d, addr, data uint64) uint64 {
	d ^= addr
	d *= fnvPrime64
	d ^= data
	d *= fnvPrime64
	return d
}
