package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Trace is a dense wire-level recording of a simulation: the value of every
// wire at every recorded cycle, bit-packed. It is the in-memory counterpart
// of the paper's VCD dump ("we recorded a VCD trace file for each
// program/processor that describes the values of all wires for every clock
// cycle"); internal/vcd converts between the two representations.
type Trace struct {
	NumWires int
	words    int
	data     []uint64
	cycles   int
}

// NewTrace creates an empty trace for circuits with numWires wires.
func NewTrace(numWires int) *Trace {
	return &Trace{NumWires: numWires, words: (numWires + 63) / 64}
}

// NumCycles returns the number of recorded cycles.
func (t *Trace) NumCycles() int { return t.cycles }

// Append records one cycle worth of wire values.
func (t *Trace) Append(values []bool) {
	if len(values) != t.NumWires {
		panic(fmt.Sprintf("trace: got %d values, want %d", len(values), t.NumWires))
	}
	base := len(t.data)
	t.data = append(t.data, make([]uint64, t.words)...)
	row := t.data[base:]
	for i, v := range values {
		if v {
			row[i/64] |= 1 << (i % 64)
		}
	}
	t.cycles++
}

// AppendRow records one cycle from an already-packed row in the same
// layout Row returns (bit w%64 of word w/64 = wire w). The wide golden
// recorder uses it to move one lane of a MachineW straight into the trace
// without a bool round-trip; the row is copied, not retained.
func (t *Trace) AppendRow(row []uint64) {
	if len(row) != t.words {
		panic(fmt.Sprintf("trace: got %d row words, want %d", len(row), t.words))
	}
	t.data = append(t.data, row...)
	t.cycles++
}

// Set overwrites a single bit; used by the VCD reader.
func (t *Trace) Set(cycle int, w netlist.WireID, v bool) {
	idx := cycle*t.words + int(w)/64
	bit := uint64(1) << (int(w) % 64)
	if v {
		t.data[idx] |= bit
	} else {
		t.data[idx] &^= bit
	}
}

// AppendEmpty adds an all-zero cycle (used by the VCD reader).
func (t *Trace) AppendEmpty() {
	t.data = append(t.data, make([]uint64, t.words)...)
	t.cycles++
}

// Get returns the value of wire w at the given cycle.
func (t *Trace) Get(cycle int, w netlist.WireID) bool {
	return t.data[cycle*t.words+int(w)/64]>>(int(w)%64)&1 == 1
}

// Row returns the packed words of one cycle; the slice aliases the trace
// storage and must not be modified.
func (t *Trace) Row(cycle int) []uint64 {
	return t.data[cycle*t.words : (cycle+1)*t.words]
}

// RowValues unpacks one cycle into a bool slice.
func (t *Trace) RowValues(cycle int) []bool {
	out := make([]bool, t.NumWires)
	row := t.Row(cycle)
	for i := range out {
		out[i] = row[i/64]>>(i%64)&1 == 1
	}
	return out
}

// Record runs the machine for cycles steps, recording the settled wire
// values of every cycle, and returns the trace. The machine is advanced in
// place.
func Record(m *Machine, env Env, cycles int) *Trace {
	return RecordObserved(m, env, cycles, nil)
}

// RecordObserved is Record with a per-cycle observer hook (cycle index of
// the cycle just recorded); nil onCycle makes it identical to Record. The
// tracesim CLI uses it to drive its progress counter.
func RecordObserved(m *Machine, env Env, cycles int, onCycle func(int)) *Trace {
	t := NewTrace(m.NL.NumWires())
	for i := 0; i < cycles; i++ {
		m.Settle(env)
		t.Append(m.Values())
		m.CommitFFs()
		if onCycle != nil {
			onCycle(i)
		}
	}
	return t
}

// RecordUntil runs until stop returns true or maxCycles is reached.
func RecordUntil(m *Machine, env Env, maxCycles int, stop func(m *Machine) bool) *Trace {
	t := NewTrace(m.NL.NumWires())
	for i := 0; i < maxCycles; i++ {
		m.Settle(env)
		t.Append(m.Values())
		if stop != nil && stop(m) {
			m.CommitFFs()
			break
		}
		m.CommitFFs()
	}
	return t
}
