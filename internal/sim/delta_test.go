package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// deltaTestBench builds a random synchronous circuit with a one-wire
// environment loop: the env reads FF Q wire rd and writes its inverse into
// input wire wr — a deterministic per-lane environment exercising the delta
// engine's refresh/call/diff path exactly like the CPU memory buses do.
type deltaTestBench struct {
	nl *netlist.Netlist
	rd netlist.WireID // env-read wire (an FF Q, outside the env cone)
	wr netlist.WireID // env-written wire
}

func newDeltaTestBench(rng *rand.Rand) *deltaTestBench {
	b := netlist.NewBuilder("delta")
	wr := b.Input("envin")
	pool := []netlist.WireID{wr}
	for i := 0; i < 4; i++ {
		pool = append(pool, b.Input(""))
	}
	var qs []netlist.WireID
	for i := 0; i < 6; i++ {
		q := b.FFPlaceholder("", rng.Intn(2) == 0, "ff")
		pool = append(pool, q)
		qs = append(qs, q)
	}
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.NAND2, cell.OR2, cell.NOR2,
		cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21, cell.MAJ3,
	}
	for i := 0; i < 50; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := cell.Lookup(k)
		inputs := make([]netlist.WireID, c.NumInputs())
		for p := range inputs {
			inputs[p] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(k, inputs...))
	}
	for _, q := range qs {
		b.SetFFD(q, pool[rng.Intn(len(pool))])
	}
	b.MarkOutput(pool[len(pool)-1])
	return &deltaTestBench{nl: b.MustNetlist(), rd: qs[0], wr: wr}
}

func (tb *deltaTestBench) scalarEnv() Env {
	return EnvFunc(func(m *Machine) { m.SetValue(tb.wr, !m.Value(tb.rd)) })
}

func (tb *deltaTestBench) wideEnv() EnvW {
	return EnvWFunc(func(m *MachineW) {
		for g := 0; g < m.W; g++ {
			m.SetLaneWord(tb.wr, g, ^m.LaneWord(tb.rd, g))
		}
	})
}

// TestDeltaMatchesDense: for W in {1,2,4}, a delta-driven machine with
// random per-lane flip-flop injections must agree with an identically
// injected dense machine every cycle — on the incremental divergence mask,
// on per-lane FF reads, and (after Materialize) on every wire of every
// lane group. The golden trace comes from an undisturbed scalar run.
func TestDeltaMatchesDense(t *testing.T) {
	for _, w := range testWidths {
		rng := rand.New(rand.NewSource(int64(900 + w)))
		for trial := 0; trial < 4; trial++ {
			tb := newDeltaTestBench(rng)
			nl := tb.nl
			const cycles = 30

			// Golden trace: scalar machine, no faults.
			sc := New(nl)
			tr := NewTrace(nl.NumWires())
			senv := tb.scalarEnv()
			for c := 0; c < cycles; c++ {
				sc.Settle(senv)
				tr.Append(sc.Values())
				sc.CommitFFs()
			}

			newWide := func() *MachineW {
				m, err := NewMachineW(nl, w)
				if err != nil {
					t.Fatal(err)
				}
				m.SetEnvWrites([]netlist.WireID{tb.wr})
				return m
			}
			dense := newWide()
			mdelta := newWide()
			d, err := NewDeltaState(mdelta, tr, tb.wideEnv(), []netlist.WireID{tb.rd})
			if err != nil {
				t.Fatal(err)
			}
			d.Reset(0)

			wenv := tb.wideEnv()
			stepTo := rng.Intn(cycles-2) + 1
			for c := 0; c < stepTo; c++ {
				// Inject the same random flips into both machines at the top
				// of a few cycles.
				if c == 0 || rng.Intn(3) == 0 {
					for k := 0; k < 2; k++ {
						ff := rng.Intn(len(nl.FFs))
						lane := rng.Intn(64 * w)
						dense.FlipLane(ff, lane)
						d.FlipLane(ff, lane)
					}
				}
				// Per-lane FF reads must agree before stepping.
				for k := 0; k < 8; k++ {
					ff := rng.Intn(len(nl.FFs))
					lane := rng.Intn(64 * w)
					if got, want := d.FFLane(ff, lane), dense.FFLane(ff, lane); got != want {
						t.Fatalf("W=%d trial %d cycle %d: FFLane(%d,%d) delta %v, dense %v", w, trial, c, ff, lane, got, want)
					}
				}
				dense.Step(wenv)
				d.Step()
				// After the commit, the incremental divergence mask must be
				// exact (the conservative FlipLane smear lasts only until the
				// next commit recomputes it).
				row := tr.Row(c + 1)
				for g := 0; g < w; g++ {
					got := d.DivergenceMaskG(g)
					want := dense.DivergenceMaskG(row, ^uint64(0), g)
					if got != want {
						t.Fatalf("W=%d trial %d cycle %d group %d: delta divergence %016x, dense %016x",
							w, trial, c, g, got, want)
					}
				}
			}
			gates := d.TakeSkipped()
			d.Materialize()
			for wid := 0; wid < nl.NumWires(); wid++ {
				for g := 0; g < w; g++ {
					got := mdelta.LaneWord(netlist.WireID(wid), g)
					want := dense.LaneWord(netlist.WireID(wid), g)
					if got != want {
						t.Fatalf("W=%d trial %d wire %d group %d after Materialize: delta %016x, dense %016x",
							w, trial, wid, g, got, want)
					}
				}
			}
			if d.Cycle() != stepTo {
				t.Fatalf("W=%d: delta cycle %d, want %d", w, d.Cycle(), stepTo)
			}
			_ = gates
		}
	}
}

// TestDeltaMaterializeBeforeStep: Materialize without any Step since Reset
// must reproduce exactly what dense FlipLane injection would have done —
// the path taken by a batch that terminates at its start cycle.
func TestDeltaMaterializeBeforeStep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tb := newDeltaTestBench(rng)
	nl := tb.nl
	sc := New(nl)
	tr := NewTrace(nl.NumWires())
	senv := tb.scalarEnv()
	for c := 0; c < 4; c++ {
		sc.Settle(senv)
		tr.Append(sc.Values())
		sc.CommitFFs()
	}
	const w = 4
	mk := func() *MachineW {
		m, err := NewMachineW(nl, w)
		if err != nil {
			t.Fatal(err)
		}
		m.SetEnvWrites([]netlist.WireID{tb.wr})
		return m
	}
	dense, mdelta := mk(), mk()
	d, err := NewDeltaState(mdelta, tr, tb.wideEnv(), []netlist.WireID{tb.rd})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(0)
	for k := 0; k < 5; k++ {
		ff := rng.Intn(len(nl.FFs))
		lane := rng.Intn(64 * w)
		dense.FlipLane(ff, lane)
		d.FlipLane(ff, lane)
	}
	d.Materialize()
	for wid := 0; wid < nl.NumWires(); wid++ {
		for g := 0; g < w; g++ {
			if got, want := mdelta.LaneWord(netlist.WireID(wid), g), dense.LaneWord(netlist.WireID(wid), g); got != want {
				t.Fatalf("wire %d group %d: delta %016x, dense %016x", wid, g, got, want)
			}
		}
	}
}

// TestDeltaRejectsEnvReadInCone: an environment that reads a wire inside
// its own written cone violates the refresh contract; the constructor must
// refuse (callers then stay dense) rather than silently missimulate.
func TestDeltaRejectsEnvReadInCone(t *testing.T) {
	b := netlist.NewBuilder("cone")
	wr := b.Input("envin")
	inCone := b.Gate(cell.INV, wr)
	q := b.FF("q", inCone, false, "ff")
	b.MarkOutput(q)
	nl := b.MustNetlist()
	m, err := NewMachineW(nl, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetEnvWrites([]netlist.WireID{wr})
	tr := NewTrace(nl.NumWires())
	tr.Append(make([]bool, nl.NumWires()))
	env := EnvWFunc(func(*MachineW) {})
	if _, err := NewDeltaState(m, tr, env, []netlist.WireID{inCone}); err == nil {
		t.Fatal("NewDeltaState accepted an env-read wire inside the env cone")
	}
	if _, err := NewDeltaState(m, tr, env, []netlist.WireID{q}); err != nil {
		t.Fatalf("NewDeltaState rejected a legal read set: %v", err)
	}
}

// TestDeltaSkippedAccounting: a single-lane-group disturbance on a large
// mostly-idle circuit must evaluate far fewer gates than dense stepping,
// and the skipped counter must account the difference.
func TestDeltaSkippedAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tb := newDeltaTestBench(rng)
	nl := tb.nl
	sc := New(nl)
	tr := NewTrace(nl.NumWires())
	senv := tb.scalarEnv()
	for c := 0; c < 10; c++ {
		sc.Settle(senv)
		tr.Append(sc.Values())
		sc.CommitFFs()
	}
	m, err := NewMachineW(nl, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.SetEnvWrites([]netlist.WireID{tb.wr})
	d, err := NewDeltaState(m, tr, tb.wideEnv(), []netlist.WireID{tb.rd})
	if err != nil {
		t.Fatal(err)
	}
	d.Reset(0)
	// No injection at all: every cycle must evaluate zero gates.
	for c := 0; c < 5; c++ {
		d.Step()
		if d.LastEvaluated() != 0 {
			t.Fatalf("cycle %d: undisturbed delta step evaluated %d gates", c, d.LastEvaluated())
		}
	}
	if got, want := d.TakeSkipped(), uint64(5*d.NumOps()); got != want {
		t.Fatalf("skipped counter %d, want %d", got, want)
	}
	if d.TakeSkipped() != 0 {
		t.Fatal("TakeSkipped did not reset")
	}
}
