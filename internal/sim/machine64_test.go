package sim

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// TestMachine64MatchesScalarRandom: a Machine64 with all lanes driven by
// the same inputs must agree with the scalar machine on every wire, every
// cycle, for random circuits and stimuli. Additionally, lanes driven with
// per-lane inputs must each match their own scalar reference.
func TestMachine64MatchesScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		nl := randomSyncCircuit(rng)
		scalar := New(nl)
		wide, err := NewMachine64(nl)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < 32; cyc++ {
			ins := make([]bool, len(nl.Inputs))
			for i := range ins {
				ins[i] = rng.Intn(2) == 0
			}
			scalar.SetInputState(ins)
			scalar.EvalComb()
			wide.LoadInputs(ins)
			wide.EvalComb()
			for w := 0; w < nl.NumWires(); w++ {
				want := scalar.Value(netlist.WireID(w))
				lanes := wide.Lanes(netlist.WireID(w))
				if want && lanes != ^uint64(0) || !want && lanes != 0 {
					t.Fatalf("trial %d cycle %d wire %s: scalar %v lanes %016x",
						trial, cyc, nl.WireName(netlist.WireID(w)), want, lanes)
				}
			}
			scalar.CommitFFs()
			wide.CommitFFs()
		}
	}
}

// TestMachine64LaneIsolation: flipping a flip-flop in lane 5 must change
// lane 5 only; all other lanes keep tracking the scalar reference.
func TestMachine64LaneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nl := randomSyncCircuit(rng)
	if len(nl.FFs) == 0 {
		t.Fatal("need FFs")
	}
	scalar := New(nl)
	faulty := New(nl)
	wide, err := NewMachine64(nl)
	if err != nil {
		t.Fatal(err)
	}

	ins := make([]bool, len(nl.Inputs))
	for i := range ins {
		ins[i] = rng.Intn(2) == 0
	}
	scalar.SetInputState(ins)
	faulty.SetInputState(ins)
	wide.LoadInputs(ins)

	// warm up 3 cycles
	for i := 0; i < 3; i++ {
		scalar.Step(NopEnv)
		faulty.Step(NopEnv)
		wide.Step(nil)
	}
	// inject into lane 5 and the scalar "faulty" reference
	ff := rng.Intn(len(nl.FFs))
	faulty.FlipFF(ff)
	wide.FlipLane(ff, 5)

	for cyc := 0; cyc < 16; cyc++ {
		scalar.Settle(NopEnv)
		faulty.Settle(NopEnv)
		wide.Settle(nil)
		for w := 0; w < nl.NumWires(); w++ {
			lanes := wide.Lanes(netlist.WireID(w))
			for l := 0; l < 64; l++ {
				got := lanes>>uint(l)&1 == 1
				var want bool
				if l == 5 {
					want = faulty.Value(netlist.WireID(w))
				} else {
					want = scalar.Value(netlist.WireID(w))
				}
				if got != want {
					t.Fatalf("cycle %d wire %d lane %d: got %v want %v", cyc, w, l, got, want)
				}
			}
		}
		scalar.CommitFFs()
		faulty.CommitFFs()
		wide.CommitFFs()
	}
}

func TestMachine64Helpers(t *testing.T) {
	b := netlist.NewBuilder("helpers")
	in := b.Input("in")
	q := b.FF("q", in, true, "")
	out := b.Gate(cell.INV, q)
	b.MarkOutput(out)
	nl := b.MustNetlist()
	m, err := NewMachine64(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Lanes(q) != ^uint64(0) {
		t.Fatal("init not broadcast")
	}
	m.Broadcast(in, true)
	if m.Lanes(in) != ^uint64(0) {
		t.Fatal("broadcast failed")
	}
	m.SetLanes(in, 0xF0F0)
	m.EvalComb()
	bus := []netlist.WireID{in, q}
	if got := m.ReadBusLane(bus, 4); got != 0b11 {
		t.Fatalf("lane 4 bus = %b", got)
	}
	if got := m.ReadBusLane(bus, 0); got != 0b10 {
		t.Fatalf("lane 0 bus = %b", got)
	}
	m.Reset()
	if m.Cycle != 0 || m.Lanes(in) != 0 {
		t.Fatal("reset failed")
	}
}

// TestMachine64GenericFallback: force the generic truth-table evaluator by
// comparing it against the direct implementations for every library cell.
func TestMachine64GenericFallback(t *testing.T) {
	for _, c := range cell.All() {
		n := c.NumInputs()
		if n == 0 {
			continue
		}
		b := netlist.NewBuilder("gen")
		ins := make([]netlist.WireID, n)
		for i := range ins {
			ins[i] = b.Input("")
		}
		out := b.Gate(c.Kind, ins...)
		b.MarkOutput(out)
		nl := b.MustNetlist()
		m, err := NewMachine64(nl)
		if err != nil {
			t.Fatal(err)
		}
		// Drive lane l with input pattern l (patterns repeat beyond 2^n).
		for p := 0; p < n; p++ {
			var plane uint64
			for l := 0; l < 64; l++ {
				if (l>>uint(p))&1 == 1 {
					plane |= 1 << uint(l)
				}
			}
			m.SetLanes(ins[p], plane)
		}
		m.EvalComb()
		direct := m.Lanes(out)
		generic := evalGeneric(&m.ops[len(m.ops)-1], m.values)
		if direct != generic {
			t.Errorf("%s: direct %016x != generic %016x", c.Name, direct, generic)
		}
		// And both must match the scalar truth table.
		for l := 0; l < 1<<n && l < 64; l++ {
			want := c.Eval(uint32(l))
			if direct>>uint(l)&1 == 1 != want {
				t.Errorf("%s lane %d: got %v want %v", c.Name, l, direct>>uint(l)&1 == 1, want)
			}
		}
	}
}

// randomSyncCircuit builds a random synchronous circuit (shared with the
// scalar tests' style).
func randomSyncCircuit(rng *rand.Rand) *netlist.Netlist {
	b := netlist.NewBuilder("rand64")
	var pool []netlist.WireID
	for i := 0; i < 5; i++ {
		pool = append(pool, b.Input(""))
	}
	var qs []netlist.WireID
	for i := 0; i < 6; i++ {
		q := b.FFPlaceholder("", rng.Intn(2) == 0, "ff")
		pool = append(pool, q)
		qs = append(qs, q)
	}
	kinds := []cell.Kind{
		cell.BUF, cell.INV, cell.AND2, cell.NAND2, cell.OR2, cell.NOR2,
		cell.XOR2, cell.XNOR2, cell.MUX2, cell.AOI21, cell.OAI21, cell.MAJ3,
		cell.AND3, cell.OR4, cell.AOI22, cell.OAI22, cell.NAND4, cell.NOR3,
	}
	for i := 0; i < 60; i++ {
		k := kinds[rng.Intn(len(kinds))]
		c := cell.Lookup(k)
		inputs := make([]netlist.WireID, c.NumInputs())
		for p := range inputs {
			inputs[p] = pool[rng.Intn(len(pool))]
		}
		pool = append(pool, b.Gate(k, inputs...))
	}
	for _, q := range qs {
		b.SetFFD(q, pool[rng.Intn(len(pool))])
	}
	b.MarkOutput(pool[len(pool)-1])
	return b.MustNetlist()
}
