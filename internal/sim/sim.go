// Package sim is a cycle-accurate gate-level simulator for netlists from
// internal/netlist. It evaluates the combinational logic in topological
// order, services external memories/peripherals through an Env callback,
// records full wire-level traces (the in-memory equivalent of the paper's
// VCD dumps), and supports SEU injection by flipping flip-flop state —
// the primitives both the MATE search evaluation and the HAFI platform
// model are built on.
package sim

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Env services the environment of the circuit between the two combinational
// evaluation passes of a cycle: it may read settled wires whose value does
// not depend on primary inputs (e.g. registered memory addresses) and set
// primary inputs (e.g. memory read data) for the final pass.
type Env interface {
	SetInputs(m *Machine)
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(m *Machine)

// SetInputs implements Env.
func (f EnvFunc) SetInputs(m *Machine) { f(m) }

// NopEnv leaves all primary inputs at their previous values.
var NopEnv Env = EnvFunc(func(*Machine) {})

// Machine simulates one netlist instance. The zero value is not usable;
// create machines with New.
type Machine struct {
	NL     *netlist.Netlist
	Cycle  int
	values []bool

	// ops is the flattened evaluation program in topological order. The
	// common library cells are dispatched by kind (like Machine64); the
	// truth table backs the generic fallback and EvalCombForced.
	ops []scalarOp

	// ffD/ffQ are the flip-flop pin wires, and ffNext the commit scratch.
	ffD, ffQ []int32
	ffNext   []bool
}

// scalarOp is one gate in the flattened evaluation program. The pin array
// is sized for cell.MaxInputs.
type scalarOp struct {
	kind    cell.Kind
	tt      uint32
	out     int32
	in      [cell.MaxInputs]int32
	numPins int8
}

// New creates a machine and resets it.
func New(nl *netlist.Netlist) *Machine {
	m := &Machine{NL: nl, values: make([]bool, nl.NumWires())}
	order := nl.EvalOrder()
	m.ops = make([]scalarOp, 0, len(order))
	for _, gi := range order {
		g := &nl.Gates[gi]
		if len(g.Inputs) > cell.MaxInputs {
			panic(fmt.Sprintf("sim: cell %s has %d inputs, max %d", g.Cell.Name, len(g.Inputs), cell.MaxInputs))
		}
		o := scalarOp{kind: g.Cell.Kind, tt: g.Cell.TruthTable(), out: int32(g.Output), numPins: int8(len(g.Inputs))}
		for p, w := range g.Inputs {
			o.in[p] = int32(w)
		}
		m.ops = append(m.ops, o)
	}
	m.ffD = make([]int32, len(nl.FFs))
	m.ffQ = make([]int32, len(nl.FFs))
	m.ffNext = make([]bool, len(nl.FFs))
	for i := range nl.FFs {
		m.ffD[i] = int32(nl.FFs[i].D)
		m.ffQ[i] = int32(nl.FFs[i].Q)
	}
	m.Reset()
	return m
}

// Reset loads every flip-flop with its initial value, clears all other
// wires and rewinds the cycle counter.
func (m *Machine) Reset() {
	for i := range m.values {
		m.values[i] = false
	}
	for i := range m.NL.FFs {
		m.values[m.NL.FFs[i].Q] = m.NL.FFs[i].Init
	}
	m.Cycle = 0
}

// Value returns the current value of a wire.
func (m *Machine) Value(w netlist.WireID) bool { return m.values[w] }

// SetValue sets a wire value directly. Intended for primary inputs from an
// Env; setting gate outputs is overwritten by the next evaluation pass.
func (m *Machine) SetValue(w netlist.WireID, v bool) { m.values[w] = v }

// ReadBus assembles an unsigned value from a bus of wires (LSB first).
func (m *Machine) ReadBus(bus []netlist.WireID) uint64 {
	var v uint64
	for i, w := range bus {
		if m.values[w] {
			v |= 1 << i
		}
	}
	return v
}

// WriteBus drives a bus of primary-input wires with an unsigned value.
func (m *Machine) WriteBus(bus []netlist.WireID, v uint64) {
	for i, w := range bus {
		m.values[w] = v>>i&1 == 1
	}
}

// EvalComb evaluates all gates once in topological order, dispatching the
// library cells by kind (mirroring Machine64.EvalComb) with a truth-table
// fallback for anything else. This runs twice per cycle in every
// experiment, so the common cells avoid the per-pin bit-probe loop.
func (m *Machine) EvalComb() {
	v := m.values
	for i := range m.ops {
		o := &m.ops[i]
		var out bool
		switch o.kind {
		case cell.TIE0:
			out = false
		case cell.TIE1:
			out = true
		case cell.BUF:
			out = v[o.in[0]]
		case cell.INV:
			out = !v[o.in[0]]
		case cell.AND2:
			out = v[o.in[0]] && v[o.in[1]]
		case cell.AND3:
			out = v[o.in[0]] && v[o.in[1]] && v[o.in[2]]
		case cell.AND4:
			out = v[o.in[0]] && v[o.in[1]] && v[o.in[2]] && v[o.in[3]]
		case cell.NAND2:
			out = !(v[o.in[0]] && v[o.in[1]])
		case cell.NAND3:
			out = !(v[o.in[0]] && v[o.in[1]] && v[o.in[2]])
		case cell.NAND4:
			out = !(v[o.in[0]] && v[o.in[1]] && v[o.in[2]] && v[o.in[3]])
		case cell.OR2:
			out = v[o.in[0]] || v[o.in[1]]
		case cell.OR3:
			out = v[o.in[0]] || v[o.in[1]] || v[o.in[2]]
		case cell.OR4:
			out = v[o.in[0]] || v[o.in[1]] || v[o.in[2]] || v[o.in[3]]
		case cell.NOR2:
			out = !(v[o.in[0]] || v[o.in[1]])
		case cell.NOR3:
			out = !(v[o.in[0]] || v[o.in[1]] || v[o.in[2]])
		case cell.NOR4:
			out = !(v[o.in[0]] || v[o.in[1]] || v[o.in[2]] || v[o.in[3]])
		case cell.XOR2:
			out = v[o.in[0]] != v[o.in[1]]
		case cell.XNOR2:
			out = v[o.in[0]] == v[o.in[1]]
		case cell.MUX2:
			if v[o.in[2]] {
				out = v[o.in[1]]
			} else {
				out = v[o.in[0]]
			}
		case cell.AOI21:
			out = !((v[o.in[0]] && v[o.in[1]]) || v[o.in[2]])
		case cell.AOI22:
			out = !((v[o.in[0]] && v[o.in[1]]) || (v[o.in[2]] && v[o.in[3]]))
		case cell.OAI21:
			out = !((v[o.in[0]] || v[o.in[1]]) && v[o.in[2]])
		case cell.OAI22:
			out = !((v[o.in[0]] || v[o.in[1]]) && (v[o.in[2]] || v[o.in[3]]))
		case cell.MAJ3:
			a, b, c := v[o.in[0]], v[o.in[1]], v[o.in[2]]
			out = (a && b) || (a && c) || (b && c)
		default:
			out = evalScalarTT(o, v)
		}
		v[o.out] = out
	}
}

// evalScalarTT probes one gate's truth table with the current pin values.
func evalScalarTT(o *scalarOp, v []bool) bool {
	var in uint32
	for p := int8(0); p < o.numPins; p++ {
		if v[o.in[p]] {
			in |= 1 << uint(p)
		}
	}
	return o.tt>>in&1 == 1
}

// Settle runs evaluation, lets the environment set inputs, and evaluates
// again. After Settle all wires carry their final value for this cycle.
// The two-pass scheme requires that the wires the Env reads do not depend
// on primary inputs; the processor netlists in this repository register
// all memory interface outputs to guarantee that.
func (m *Machine) Settle(env Env) {
	m.EvalComb()
	if env != nil {
		env.SetInputs(m)
		m.EvalComb()
	}
}

// CommitFFs clocks every flip-flop: Q <- D. Call after Settle.
func (m *Machine) CommitFFs() {
	for i, d := range m.ffD {
		m.ffNext[i] = m.values[d]
	}
	for i, q := range m.ffQ {
		m.values[q] = m.ffNext[i]
	}
	m.Cycle++
}

// Step runs one full clock cycle: settle combinational logic with the
// environment, then clock the flip-flops.
func (m *Machine) Step(env Env) {
	m.Settle(env)
	m.CommitFFs()
}

// Run advances the machine n cycles.
func (m *Machine) Run(n int, env Env) {
	for i := 0; i < n; i++ {
		m.Step(env)
	}
}

// FlipFF injects an SEU: the stored value of flip-flop ffIndex is inverted.
// Call before Settle to model an upset that manifests at the beginning of
// the current cycle.
func (m *Machine) FlipFF(ffIndex int) {
	q := m.NL.FFs[ffIndex].Q
	m.values[q] = !m.values[q]
}

// FFState snapshots the stored values of all flip-flops.
func (m *Machine) FFState() []bool {
	s := make([]bool, len(m.NL.FFs))
	for i := range m.NL.FFs {
		s[i] = m.values[m.NL.FFs[i].Q]
	}
	return s
}

// SetFFState restores a snapshot taken with FFState.
func (m *Machine) SetFFState(s []bool) {
	if len(s) != len(m.NL.FFs) {
		panic(fmt.Sprintf("sim: snapshot has %d FFs, netlist %d", len(s), len(m.NL.FFs)))
	}
	for i := range m.NL.FFs {
		m.values[m.NL.FFs[i].Q] = s[i]
	}
}

// InputState snapshots the current values of all primary inputs.
func (m *Machine) InputState() []bool {
	s := make([]bool, len(m.NL.Inputs))
	for i, w := range m.NL.Inputs {
		s[i] = m.values[w]
	}
	return s
}

// SetInputState restores primary-input values captured with InputState.
func (m *Machine) SetInputState(s []bool) {
	for i, w := range m.NL.Inputs {
		m.values[w] = s[i]
	}
}

// Values exposes the raw value slice for trace recording. The slice is
// owned by the machine; do not retain it across Step calls.
func (m *Machine) Values() []bool { return m.values }

// EvalCombForced evaluates the combinational logic while holding one wire
// at a fixed value, regardless of its driver — stuck-at fault simulation
// for a single evaluation (used by fault-collapsing validation).
func (m *Machine) EvalCombForced(w netlist.WireID, v bool) {
	m.values[w] = v
	values := m.values
	for i := range m.ops {
		o := &m.ops[i]
		if o.out == int32(w) {
			continue
		}
		values[o.out] = evalScalarTT(o, values)
	}
}
