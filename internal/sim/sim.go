// Package sim is a cycle-accurate gate-level simulator for netlists from
// internal/netlist. It evaluates the combinational logic in topological
// order, services external memories/peripherals through an Env callback,
// records full wire-level traces (the in-memory equivalent of the paper's
// VCD dumps), and supports SEU injection by flipping flip-flop state —
// the primitives both the MATE search evaluation and the HAFI platform
// model are built on.
package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Env services the environment of the circuit between the two combinational
// evaluation passes of a cycle: it may read settled wires whose value does
// not depend on primary inputs (e.g. registered memory addresses) and set
// primary inputs (e.g. memory read data) for the final pass.
type Env interface {
	SetInputs(m *Machine)
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(m *Machine)

// SetInputs implements Env.
func (f EnvFunc) SetInputs(m *Machine) { f(m) }

// NopEnv leaves all primary inputs at their previous values.
var NopEnv Env = EnvFunc(func(*Machine) {})

// Machine simulates one netlist instance. The zero value is not usable;
// create machines with New.
type Machine struct {
	NL     *netlist.Netlist
	Cycle  int
	values []bool

	// Flattened evaluation program, in topological order: for gate i,
	// pins evalPins[evalStart[i]:evalStart[i+1]] index into values, the
	// truth table is evalTT[i], and the result lands in values[evalOut[i]].
	evalPins  []int32
	evalStart []int32
	evalTT    []uint32
	evalOut   []int32

	// ffD/ffQ are the flip-flop pin wires, and ffNext the commit scratch.
	ffD, ffQ []int32
	ffNext   []bool
}

// New creates a machine and resets it.
func New(nl *netlist.Netlist) *Machine {
	m := &Machine{NL: nl, values: make([]bool, nl.NumWires())}
	order := nl.EvalOrder()
	m.evalStart = make([]int32, len(order)+1)
	m.evalTT = make([]uint32, len(order))
	m.evalOut = make([]int32, len(order))
	for i, gi := range order {
		g := &nl.Gates[gi]
		m.evalTT[i] = g.Cell.TruthTable()
		m.evalOut[i] = int32(g.Output)
		for _, w := range g.Inputs {
			m.evalPins = append(m.evalPins, int32(w))
		}
		m.evalStart[i+1] = int32(len(m.evalPins))
	}
	m.ffD = make([]int32, len(nl.FFs))
	m.ffQ = make([]int32, len(nl.FFs))
	m.ffNext = make([]bool, len(nl.FFs))
	for i := range nl.FFs {
		m.ffD[i] = int32(nl.FFs[i].D)
		m.ffQ[i] = int32(nl.FFs[i].Q)
	}
	m.Reset()
	return m
}

// Reset loads every flip-flop with its initial value, clears all other
// wires and rewinds the cycle counter.
func (m *Machine) Reset() {
	for i := range m.values {
		m.values[i] = false
	}
	for i := range m.NL.FFs {
		m.values[m.NL.FFs[i].Q] = m.NL.FFs[i].Init
	}
	m.Cycle = 0
}

// Value returns the current value of a wire.
func (m *Machine) Value(w netlist.WireID) bool { return m.values[w] }

// SetValue sets a wire value directly. Intended for primary inputs from an
// Env; setting gate outputs is overwritten by the next evaluation pass.
func (m *Machine) SetValue(w netlist.WireID, v bool) { m.values[w] = v }

// ReadBus assembles an unsigned value from a bus of wires (LSB first).
func (m *Machine) ReadBus(bus []netlist.WireID) uint64 {
	var v uint64
	for i, w := range bus {
		if m.values[w] {
			v |= 1 << i
		}
	}
	return v
}

// WriteBus drives a bus of primary-input wires with an unsigned value.
func (m *Machine) WriteBus(bus []netlist.WireID, v uint64) {
	for i, w := range bus {
		m.values[w] = v>>i&1 == 1
	}
}

// EvalComb evaluates all gates once in topological order, using the
// flattened evaluation program built at construction time.
func (m *Machine) EvalComb() {
	values := m.values
	pins := m.evalPins
	for i := range m.evalTT {
		var in uint32
		lo, hi := m.evalStart[i], m.evalStart[i+1]
		for p := int32(0); p < hi-lo; p++ {
			if values[pins[lo+p]] {
				in |= 1 << uint(p)
			}
		}
		values[m.evalOut[i]] = m.evalTT[i]>>in&1 == 1
	}
}

// Settle runs evaluation, lets the environment set inputs, and evaluates
// again. After Settle all wires carry their final value for this cycle.
// The two-pass scheme requires that the wires the Env reads do not depend
// on primary inputs; the processor netlists in this repository register
// all memory interface outputs to guarantee that.
func (m *Machine) Settle(env Env) {
	m.EvalComb()
	if env != nil {
		env.SetInputs(m)
		m.EvalComb()
	}
}

// CommitFFs clocks every flip-flop: Q <- D. Call after Settle.
func (m *Machine) CommitFFs() {
	for i, d := range m.ffD {
		m.ffNext[i] = m.values[d]
	}
	for i, q := range m.ffQ {
		m.values[q] = m.ffNext[i]
	}
	m.Cycle++
}

// Step runs one full clock cycle: settle combinational logic with the
// environment, then clock the flip-flops.
func (m *Machine) Step(env Env) {
	m.Settle(env)
	m.CommitFFs()
}

// Run advances the machine n cycles.
func (m *Machine) Run(n int, env Env) {
	for i := 0; i < n; i++ {
		m.Step(env)
	}
}

// FlipFF injects an SEU: the stored value of flip-flop ffIndex is inverted.
// Call before Settle to model an upset that manifests at the beginning of
// the current cycle.
func (m *Machine) FlipFF(ffIndex int) {
	q := m.NL.FFs[ffIndex].Q
	m.values[q] = !m.values[q]
}

// FFState snapshots the stored values of all flip-flops.
func (m *Machine) FFState() []bool {
	s := make([]bool, len(m.NL.FFs))
	for i := range m.NL.FFs {
		s[i] = m.values[m.NL.FFs[i].Q]
	}
	return s
}

// SetFFState restores a snapshot taken with FFState.
func (m *Machine) SetFFState(s []bool) {
	if len(s) != len(m.NL.FFs) {
		panic(fmt.Sprintf("sim: snapshot has %d FFs, netlist %d", len(s), len(m.NL.FFs)))
	}
	for i := range m.NL.FFs {
		m.values[m.NL.FFs[i].Q] = s[i]
	}
}

// InputState snapshots the current values of all primary inputs.
func (m *Machine) InputState() []bool {
	s := make([]bool, len(m.NL.Inputs))
	for i, w := range m.NL.Inputs {
		s[i] = m.values[w]
	}
	return s
}

// SetInputState restores primary-input values captured with InputState.
func (m *Machine) SetInputState(s []bool) {
	for i, w := range m.NL.Inputs {
		m.values[w] = s[i]
	}
}

// Values exposes the raw value slice for trace recording. The slice is
// owned by the machine; do not retain it across Step calls.
func (m *Machine) Values() []bool { return m.values }

// EvalCombForced evaluates the combinational logic while holding one wire
// at a fixed value, regardless of its driver — stuck-at fault simulation
// for a single evaluation (used by fault-collapsing validation).
func (m *Machine) EvalCombForced(w netlist.WireID, v bool) {
	m.values[w] = v
	values := m.values
	pins := m.evalPins
	for i := range m.evalTT {
		if m.evalOut[i] == int32(w) {
			continue
		}
		var in uint32
		lo, hi := m.evalStart[i], m.evalStart[i+1]
		for p := int32(0); p < hi-lo; p++ {
			if values[pins[lo+p]] {
				in |= 1 << uint(p)
			}
		}
		values[m.evalOut[i]] = m.evalTT[i]>>in&1 == 1
	}
}
