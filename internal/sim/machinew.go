package sim

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// MachineW is the width-parameterized wide-word machine: every wire
// carries W uint64 lane words (64·W lanes total), so one combinational
// pass advances 64·W circuit instances. Machine64 is the W=1
// instantiation; the batched campaign engine runs W=4 (256 lanes) by
// default.
//
// Layout: values is wire-major with stride W — values[int(w)*W+g] is lane
// group g (lanes 64g..64g+63) of wire w. The evaluation program indices
// are pre-scaled by W at construction, so the dense kernels index
// v[o.out]..v[o.out+W-1] without a per-access multiply, and the W=1
// program is bit-for-bit the classic Machine64 program.
//
// Width parameterization is deliberately NOT done with Go generics: a
// type parameter cannot range over array lengths ([1]uint64|[4]uint64 has
// no core type, so elements cannot be indexed), and GCshape dictionaries
// would put an indirect call in the hottest loop of the repository. The
// stride-W layout with a hand-unrolled W=4 kernel benchmarks cleaner.
type MachineW struct {
	NL     *netlist.Netlist
	W      int
	Cycle  int
	values []uint64

	// ag is the number of active lane groups (1 <= ag <= W). CompactLanes
	// shrinks it after packing live lanes into the low groups; Reset and
	// LoadState restore the full width. The dense kernels, flip-flop
	// commit and bus transposes only touch groups < ag, which is what
	// makes a batch whose lanes have mostly retired cheap to finish.
	ag int

	cscratch []uint64 // CompactLanes per-wire staging, len W

	ops     []op64 // out/in pre-scaled by W
	runs    []opRun
	envOps  []op64 // subprogram: gates downstream of env-written wires
	envRuns []opRun

	// envWrites/envCone/envOpFlag record the SetEnvWrites declaration for
	// the cone-delta engine: the flattened written wires, the per-wire
	// (scaled index) downstream-cone membership, and the per-op membership
	// aligned with ops.
	envWrites []netlist.WireID
	envCone   []bool
	envOpFlag []bool

	ffD, ffQ   []int32  // unscaled wire ids (golden-row lookups)
	ffDs, ffQs []int32  // pre-scaled (wire*W)
	ffNext     []uint64 // len FFs*W
}

// NewMachineW creates a 64·W-lane machine and resets it. w must be >= 1;
// w=1 reproduces Machine64 exactly (same program, same layout).
func NewMachineW(nl *netlist.Netlist, w int) (*MachineW, error) {
	if w < 1 {
		return nil, fmt.Errorf("sim: machine width %d out of range (want >= 1)", w)
	}
	m := &MachineW{NL: nl, W: w, ag: w, values: make([]uint64, nl.NumWires()*w), cscratch: make([]uint64, w)}
	level := make([]int32, nl.NumWires())
	for _, gi := range nl.EvalOrder() {
		g := &nl.Gates[gi]
		if g.Cell.NumInputs() > 4 {
			return nil, fmt.Errorf("sim: cell %s has more than 4 inputs; not supported by the lane-parallel evaluator", g.Cell.Name)
		}
		o := op64{kind: g.Cell.Kind, tt: g.Cell.TruthTable(), out: int32(g.Output), numPins: int8(len(g.Inputs))}
		for p, w := range g.Inputs {
			o.in[p] = int32(w)
			if level[w] >= o.level {
				o.level = level[w] + 1
			}
		}
		level[g.Output] = o.level
		m.ops = append(m.ops, o)
	}
	// Level-major, kind-minor order: equal-level gates are independent, so
	// grouping them by kind is a legal reordering of the topological sort.
	sort.SliceStable(m.ops, func(a, b int) bool {
		if m.ops[a].level != m.ops[b].level {
			return m.ops[a].level < m.ops[b].level
		}
		return m.ops[a].kind < m.ops[b].kind
	})
	// Pre-scale the program indices by the machine width (no-op at W=1).
	if w > 1 {
		for i := range m.ops {
			o := &m.ops[i]
			o.out *= int32(w)
			for p := 0; p < int(o.numPins); p++ {
				o.in[p] *= int32(w)
			}
		}
	}
	m.runs = buildRuns(m.ops)
	m.ffD = make([]int32, len(nl.FFs))
	m.ffQ = make([]int32, len(nl.FFs))
	m.ffDs = make([]int32, len(nl.FFs))
	m.ffQs = make([]int32, len(nl.FFs))
	m.ffNext = make([]uint64, len(nl.FFs)*w)
	for i := range nl.FFs {
		m.ffD[i] = int32(nl.FFs[i].D)
		m.ffQ[i] = int32(nl.FFs[i].Q)
		m.ffDs[i] = int32(nl.FFs[i].D) * int32(w)
		m.ffQs[i] = int32(nl.FFs[i].Q) * int32(w)
	}
	m.Reset()
	return m, nil
}

// NumLanes returns the total lane count (64·W).
func (m *MachineW) NumLanes() int { return 64 * m.W }

// ActiveGroups returns the number of live lane groups (W until CompactLanes
// shrinks it; Reset/LoadState restore the full width).
func (m *MachineW) ActiveGroups() int { return m.ag }

// ActiveLanes returns the number of live lanes (64·ActiveGroups).
func (m *MachineW) ActiveLanes() int { return 64 * m.ag }

// CompactLanes packs the listed source lanes into lanes 0..len(src)-1 (in
// order) and shrinks the active group count to cover them — the
// sparse-lane primitive that lets a wide batch stop simulating lanes whose
// experiments have finished. src must be strictly increasing (so the
// in-place pack never overwrites a lane it still has to read) and
// non-empty; lanes beyond the new active range hold garbage until the next
// Reset/LoadState restores the full width.
func (m *MachineW) CompactLanes(src []uint16) {
	n := len(src)
	if n == 0 || n > m.ActiveLanes() {
		panic("sim: CompactLanes lane list out of range")
	}
	w := m.W
	newAG := (n + 63) >> 6
	sc := m.cscratch
	for base := 0; base < len(m.values); base += w {
		vals := m.values[base : base+w]
		for g := 0; g < newAG; g++ {
			sc[g] = 0
		}
		for i, s := range src {
			sc[i>>6] |= vals[s>>6] >> (s & 63) & 1 << (uint(i) & 63)
		}
		copy(vals[:newAG], sc[:newAG])
	}
	m.ag = newAG
}

// LaneWireWords returns the length of an ExportLane snapshot: the wire
// count packed one bit per wire.
func (m *MachineW) LaneWireWords() int { return (m.NL.NumWires() + 63) / 64 }

// ExportLane copies one lane's complete wire state (flip-flops, primary
// inputs and settled combinational values alike) into dst, one bit per
// wire (len(dst) >= LaneWireWords()). Together with ImportLane it lets a
// lane migrate between wide machines of the same netlist — the campaign
// engine uses this to pull long-running straggler lanes out of nearly
// drained batches and finish them together in one packed device.
func (m *MachineW) ExportLane(lane int, dst []uint64) {
	w, g, sh := m.W, lane>>6, uint(lane)&63
	nw := m.NL.NumWires()
	for i := 0; i < (nw+63)/64; i++ {
		dst[i] = 0
	}
	for wi := 0; wi < nw; wi++ {
		dst[wi>>6] |= m.values[wi*w+g] >> sh & 1 << (uint(wi) & 63)
	}
}

// ImportLane drives one lane's complete wire state from an ExportLane
// snapshot (possibly taken on a machine of a different width). The lane
// must lie inside the active groups; other lanes are untouched. Because
// the snapshot holds settled values, the imported lane is consistent
// without a Settle — exactly as the exporting machine left it.
func (m *MachineW) ImportLane(lane int, src []uint64) {
	w, g := m.W, lane>>6
	bit := uint64(1) << (uint(lane) & 63)
	nw := m.NL.NumWires()
	for wi := 0; wi < nw; wi++ {
		if src[wi>>6]>>(uint(wi)&63)&1 == 1 {
			m.values[wi*w+g] |= bit
		} else {
			m.values[wi*w+g] &^= bit
		}
	}
}

// FFStateLane snapshots one lane's stored flip-flop state in the scalar
// Machine.FFState format (index i = flip-flop i).
func (m *MachineW) FFStateLane(lane int) []bool {
	s := make([]bool, len(m.ffQs))
	g := lane >> 6
	bit := uint64(1) << (uint(lane) & 63)
	for i := range s {
		s[i] = m.values[int(m.ffQs[i])+g]&bit != 0
	}
	return s
}

// InputStateLane snapshots one lane's primary-input values in the scalar
// Machine.InputState format (index i = NL.Inputs[i]).
func (m *MachineW) InputStateLane(lane int) []bool {
	s := make([]bool, len(m.NL.Inputs))
	g := lane >> 6
	bit := uint64(1) << (uint(lane) & 63)
	for i, w := range m.NL.Inputs {
		s[i] = m.values[int(w)*m.W+g]&bit != 0
	}
	return s
}

// Reset initialises every lane with the flip-flop reset state.
func (m *MachineW) Reset() {
	m.ag = m.W
	for i := range m.values {
		m.values[i] = 0
	}
	for i := range m.NL.FFs {
		if m.NL.FFs[i].Init {
			base := int(m.ffQs[i])
			for g := 0; g < m.W; g++ {
				m.values[base+g] = ^uint64(0)
			}
		}
	}
	m.Cycle = 0
}

// LaneWord returns lane group g of a wire (bit l = lane 64g+l).
func (m *MachineW) LaneWord(w netlist.WireID, g int) uint64 { return m.values[int(w)*m.W+g] }

// SetLaneWord drives lane group g of a wire.
func (m *MachineW) SetLaneWord(w netlist.WireID, g int, v uint64) { m.values[int(w)*m.W+g] = v }

// Broadcast drives a wire to the same value in every lane.
func (m *MachineW) Broadcast(w netlist.WireID, v bool) {
	var x uint64
	if v {
		x = ^uint64(0)
	}
	base := int(w) * m.W
	for g := 0; g < m.W; g++ {
		m.values[base+g] = x
	}
}

// FlipLane flips the stored value of flip-flop ffIndex in one lane only —
// the lane-parallel SEU injection primitive. lane ranges over [0, 64·W).
func (m *MachineW) FlipLane(ffIndex, lane int) {
	m.values[int(m.ffQs[ffIndex])+lane>>6] ^= 1 << (uint(lane) & 63)
}

// FFLane reads the stored value of flip-flop ffIndex in one lane.
func (m *MachineW) FFLane(ffIndex, lane int) bool {
	return m.values[int(m.ffQs[ffIndex])+lane>>6]>>(uint(lane)&63)&1 == 1
}

// LoadState broadcasts a scalar flip-flop snapshot (from Machine.FFState)
// into every lane and restores the full lane width after a CompactLanes.
func (m *MachineW) LoadState(ffs []bool) {
	m.ag = m.W
	for i, v := range ffs {
		var x uint64
		if v {
			x = ^uint64(0)
		}
		base := int(m.ffQs[i])
		for g := 0; g < m.W; g++ {
			m.values[base+g] = x
		}
	}
}

// LoadInputs broadcasts scalar primary-input values into every lane.
func (m *MachineW) LoadInputs(ins []bool) {
	for i, w := range m.NL.Inputs {
		m.Broadcast(w, ins[i])
	}
}

// EvalComb evaluates all gates once across the active lane groups.
func (m *MachineW) EvalComb() { evalProgramW(m.ops, m.runs, m.values, m.ag) }

// SetEnvWrites declares the complete set of wires the lane environment may
// drive between the two settle passes. The machine precomputes the cone of
// gates downstream of those wires; Settle's second pass then evaluates
// only that subprogram — every other gate's inputs are untouched by the
// environment, so its pass-one output is already final. Calling this with
// an incomplete wire list yields stale simulations; leave it unset to keep
// the safe full second pass.
func (m *MachineW) SetEnvWrites(wires ...[]netlist.WireID) {
	// inCone is indexed by the pre-scaled wire index (wire*W), matching the
	// op program, so the same code serves every width.
	inCone := make([]bool, m.NL.NumWires()*m.W)
	m.envWrites = m.envWrites[:0]
	for _, ws := range wires {
		for _, w := range ws {
			inCone[int(w)*m.W] = true
			m.envWrites = append(m.envWrites, w)
		}
	}
	m.envOps = nil
	m.envOpFlag = make([]bool, len(m.ops))
	for i := range m.ops {
		o := &m.ops[i]
		hit := false
		for p := 0; p < int(o.numPins); p++ {
			if inCone[o.in[p]] {
				hit = true
				break
			}
		}
		if hit {
			inCone[o.out] = true
			m.envOpFlag[i] = true
			m.envOps = append(m.envOps, *o)
		}
	}
	m.envRuns = buildRuns(m.envOps)
	m.envCone = inCone
}

// EnvConeSize reports how many gates the restricted second settle pass
// evaluates (0 when SetEnvWrites was never called).
func (m *MachineW) EnvConeSize() int { return len(m.envOps) }

// DivergenceMaskG compares lane group g's stored flip-flop state against a
// packed golden wire row (as returned by Trace.Row for the same cycle):
// bit l of the result is set when lane 64g+l differs from the golden
// reference in at least one flip-flop. Only the lanes in interest are
// reported, and the scan stops as soon as every interesting lane has
// diverged — the common case for freshly injected faults.
func (m *MachineW) DivergenceMaskG(goldenRow []uint64, interest uint64, g int) uint64 {
	var div uint64
	v := m.values
	for i, q := range m.ffQ {
		gb := goldenRow[q>>6] >> (uint(q) & 63) & 1
		div |= v[int(m.ffQs[i])+g] ^ -gb
		if div&interest == interest {
			break
		}
	}
	return div & interest
}

// FFDivergedLane reports whether flip-flop ffIndex of one lane differs
// from a packed golden wire row. It is the O(1) steady-state half of the
// campaign engine's watched-flip-flop convergence filter: a lane whose
// last known diverged flip-flop still differs cannot have converged, so
// the full FirstDivergedFF scan is skipped for it.
func (m *MachineW) FFDivergedLane(ffIndex, lane int, goldenRow []uint64) bool {
	q := m.ffQ[ffIndex]
	gb := goldenRow[q>>6] >> (uint(q) & 63) & 1
	return m.values[int(m.ffQs[ffIndex])+lane>>6]>>(uint(lane)&63)&1 != gb
}

// FirstDivergedFF returns the index of the first flip-flop in which one
// lane differs from a packed golden wire row, or -1 when the lane's full
// flip-flop state matches the reference — the convergence test, fused
// with finding the next watched flip-flop for FFDivergedLane.
func (m *MachineW) FirstDivergedFF(lane int, goldenRow []uint64) int {
	g, sh := lane>>6, uint(lane)&63
	for i, q := range m.ffQ {
		gb := goldenRow[q>>6] >> (uint(q) & 63) & 1
		if m.values[int(m.ffQs[i])+g]>>sh&1 != gb {
			return i
		}
	}
	return -1
}

// CommitFFs clocks every flip-flop in the active lanes.
func (m *MachineW) CommitFFs() {
	if m.W == 1 {
		// Keep the 64-lane fast path as tight as the original Machine64.
		for i, d := range m.ffD {
			m.ffNext[i] = m.values[d]
		}
		for i, q := range m.ffQ {
			m.values[q] = m.ffNext[i]
		}
	} else {
		// Unrolled per active-group-count staging: the generic copy()
		// variant spends its time in memmove call overhead at these tiny
		// lengths. ffNext is scratch, so the narrow cases pack it densely.
		nx, v := m.ffNext, m.values
		switch m.ag {
		case 1:
			for i, d := range m.ffDs {
				nx[i] = v[d]
			}
			for i, q := range m.ffQs {
				v[q] = nx[i]
			}
		case 2:
			for i, d := range m.ffDs {
				nx[2*i], nx[2*i+1] = v[d], v[d+1]
			}
			for i, q := range m.ffQs {
				v[q], v[q+1] = nx[2*i], nx[2*i+1]
			}
		case 3:
			for i, d := range m.ffDs {
				nx[3*i], nx[3*i+1], nx[3*i+2] = v[d], v[d+1], v[d+2]
			}
			for i, q := range m.ffQs {
				v[q], v[q+1], v[q+2] = nx[3*i], nx[3*i+1], nx[3*i+2]
			}
		case 4:
			for i, d := range m.ffDs {
				nx[4*i], nx[4*i+1], nx[4*i+2], nx[4*i+3] = v[d], v[d+1], v[d+2], v[d+3]
			}
			for i, q := range m.ffQs {
				v[q], v[q+1], v[q+2], v[q+3] = nx[4*i], nx[4*i+1], nx[4*i+2], nx[4*i+3]
			}
		default:
			w, ag := m.W, m.ag
			for i, d := range m.ffDs {
				copy(nx[i*w:i*w+ag], v[d:int(d)+ag])
			}
			for i, q := range m.ffQs {
				copy(v[q:int(q)+ag], nx[i*w:i*w+ag])
			}
		}
	}
	m.Cycle++
}

// EnvW services the environment of all 64·W lanes between the two
// evaluation passes (per-lane memories, per-lane read data).
type EnvW interface {
	SetInputsW(m *MachineW)
}

// EnvWFunc adapts a function to EnvW.
type EnvWFunc func(m *MachineW)

// SetInputsW implements EnvW.
func (f EnvWFunc) SetInputsW(m *MachineW) { f(m) }

// Settle runs the two-pass evaluation with the lane environment. When
// SetEnvWrites has declared the environment's write set, the second pass
// evaluates only the downstream cone of those wires.
func (m *MachineW) Settle(env EnvW) {
	m.EvalComb()
	if env != nil {
		env.SetInputsW(m)
		if m.envOps != nil {
			evalProgramW(m.envOps, m.envRuns, m.values, m.ag)
		} else {
			m.EvalComb()
		}
	}
}

// Step advances one clock cycle in all lanes.
func (m *MachineW) Step(env EnvW) {
	m.Settle(env)
	m.CommitFFs()
}

// ReadBusLane assembles the value of a bus in one lane (lane < 64·W).
func (m *MachineW) ReadBusLane(bus []netlist.WireID, lane int) uint64 {
	var v uint64
	g := lane >> 6
	bit := uint64(1) << (uint(lane) & 63)
	for i, w := range bus {
		if m.values[int(w)*m.W+g]&bit != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// evalProgramW dispatches the dense kernel for the active group count:
// the classic 64-lane program at one group (indices are pre-scaled by W,
// so it evaluates group 0 correctly at any stride), hand-unrolled kernels
// for two to four groups, and a generic per-group loop beyond that. After
// lane compaction a wide machine walks down this ladder as its batch
// drains.
func evalProgramW(ops []op64, runs []opRun, v []uint64, w int) {
	switch w {
	case 1:
		evalProgram(ops, runs, v)
	case 2:
		evalProgram2(ops, runs, v)
	case 3:
		evalProgram3(ops, runs, v)
	case 4:
		evalProgram4(ops, runs, v)
	default:
		evalProgramN(ops, v, w)
	}
}

// evalProgramN is the generic-width dense kernel (any W): one kind switch
// per op per group. Only non-default widths (e.g. W=2 in the property
// tests) pay its dispatch cost.
func evalProgramN(ops []op64, v []uint64, w int) {
	for i := range ops {
		o := &ops[i]
		for g := int32(0); g < int32(w); g++ {
			v[o.out+g] = evalOpG(o, v, g)
		}
	}
}

// evalOpG evaluates one op for lane group g (indices pre-scaled).
func evalOpG(o *op64, v []uint64, g int32) uint64 {
	var in [4]uint64
	for p := 0; p < int(o.numPins); p++ {
		in[p] = v[o.in[p]+g]
	}
	return evalOpWords(o, &in)
}

// evalOpWords evaluates one op given its input lane words — the shared
// single-word gate kernel used by the generic dense path and the
// cone-delta evaluator.
func evalOpWords(o *op64, in *[4]uint64) uint64 {
	switch o.kind {
	case cell.TIE0:
		return 0
	case cell.TIE1:
		return ^uint64(0)
	case cell.BUF:
		return in[0]
	case cell.INV:
		return ^in[0]
	case cell.AND2:
		return in[0] & in[1]
	case cell.AND3:
		return in[0] & in[1] & in[2]
	case cell.AND4:
		return in[0] & in[1] & in[2] & in[3]
	case cell.NAND2:
		return ^(in[0] & in[1])
	case cell.NAND3:
		return ^(in[0] & in[1] & in[2])
	case cell.NAND4:
		return ^(in[0] & in[1] & in[2] & in[3])
	case cell.OR2:
		return in[0] | in[1]
	case cell.OR3:
		return in[0] | in[1] | in[2]
	case cell.OR4:
		return in[0] | in[1] | in[2] | in[3]
	case cell.NOR2:
		return ^(in[0] | in[1])
	case cell.NOR3:
		return ^(in[0] | in[1] | in[2])
	case cell.NOR4:
		return ^(in[0] | in[1] | in[2] | in[3])
	case cell.XOR2:
		return in[0] ^ in[1]
	case cell.XNOR2:
		return ^(in[0] ^ in[1])
	case cell.MUX2:
		return (^in[2] & in[0]) | (in[2] & in[1])
	case cell.AOI21:
		return ^((in[0] & in[1]) | in[2])
	case cell.AOI22:
		return ^((in[0] & in[1]) | (in[2] & in[3]))
	case cell.OAI21:
		return ^((in[0] | in[1]) & in[2])
	case cell.OAI22:
		return ^((in[0] | in[1]) & (in[2] | in[3]))
	case cell.MAJ3:
		return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2])
	default:
		// Generic fallback: Shannon expansion over the truth table.
		var out uint64
		n := int(o.numPins)
		for minterm := 0; minterm < 1<<n; minterm++ {
			if o.tt>>uint(minterm)&1 == 0 {
				continue
			}
			term := ^uint64(0)
			for p := 0; p < n; p++ {
				if minterm>>uint(p)&1 == 1 {
					term &= in[p]
				} else {
					term &= ^in[p]
				}
			}
			out |= term
		}
		return out
	}
}

// at4 views four consecutive lane words as one 256-lane wide word.
func at4(v []uint64, i int32) *[4]uint64 { return (*[4]uint64)(v[i:]) }

// evalProgram4 is the hand-unrolled W=4 (256-lane) dense kernel: the same
// kind-grouped dispatch as evalProgram, four lane words per wire. The
// 4-element array expressions compile to straight-line loads/ops/stores
// (and vectorize where the ISA allows), which benchmarked ahead of both a
// generics-based and an inner-loop variant.
func evalProgram4(ops []op64, runs []opRun, v []uint64) {
	for _, r := range runs {
		seg := ops[r.start:r.end]
		switch r.kind {
		case cell.TIE0:
			for i := range seg {
				d := at4(v, seg[i].out)
				d[0], d[1], d[2], d[3] = 0, 0, 0, 0
			}
		case cell.TIE1:
			for i := range seg {
				d := at4(v, seg[i].out)
				d[0], d[1], d[2], d[3] = ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
			}
		case cell.BUF:
			for i := range seg {
				o := &seg[i]
				a, d := at4(v, o.in[0]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0], a[1], a[2], a[3]
			}
		case cell.INV:
			for i := range seg {
				o := &seg[i]
				a, d := at4(v, o.in[0]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^a[0], ^a[1], ^a[2], ^a[3]
			}
		case cell.AND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]&b[0], a[1]&b[1], a[2]&b[2], a[3]&b[3]
			}
		case cell.AND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]&b[0]&c[0], a[1]&b[1]&c[1], a[2]&b[2]&c[2], a[3]&b[3]&c[3]
			}
		case cell.AND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]&b[0]&c[0]&e[0], a[1]&b[1]&c[1]&e[1], a[2]&b[2]&c[2]&e[2], a[3]&b[3]&c[3]&e[3]
			}
		case cell.NAND2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] & b[0]), ^(a[1] & b[1]), ^(a[2] & b[2]), ^(a[3] & b[3])
			}
		case cell.NAND3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] & b[0] & c[0]), ^(a[1] & b[1] & c[1]), ^(a[2] & b[2] & c[2]), ^(a[3] & b[3] & c[3])
			}
		case cell.NAND4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] & b[0] & c[0] & e[0]), ^(a[1] & b[1] & c[1] & e[1]), ^(a[2] & b[2] & c[2] & e[2]), ^(a[3] & b[3] & c[3] & e[3])
			}
		case cell.OR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]|b[0], a[1]|b[1], a[2]|b[2], a[3]|b[3]
			}
		case cell.OR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]|b[0]|c[0], a[1]|b[1]|c[1], a[2]|b[2]|c[2], a[3]|b[3]|c[3]
			}
		case cell.OR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]|b[0]|c[0]|e[0], a[1]|b[1]|c[1]|e[1], a[2]|b[2]|c[2]|e[2], a[3]|b[3]|c[3]|e[3]
			}
		case cell.NOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] | b[0]), ^(a[1] | b[1]), ^(a[2] | b[2]), ^(a[3] | b[3])
			}
		case cell.NOR3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] | b[0] | c[0]), ^(a[1] | b[1] | c[1]), ^(a[2] | b[2] | c[2]), ^(a[3] | b[3] | c[3])
			}
		case cell.NOR4:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] | b[0] | c[0] | e[0]), ^(a[1] | b[1] | c[1] | e[1]), ^(a[2] | b[2] | c[2] | e[2]), ^(a[3] | b[3] | c[3] | e[3])
			}
		case cell.XOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = a[0]^b[0], a[1]^b[1], a[2]^b[2], a[3]^b[3]
			}
		case cell.XNOR2:
			for i := range seg {
				o := &seg[i]
				a, b, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^(a[0] ^ b[0]), ^(a[1] ^ b[1]), ^(a[2] ^ b[2]), ^(a[3] ^ b[3])
			}
		case cell.MUX2:
			for i := range seg {
				o := &seg[i]
				a, b, s, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0] = a[0] ^ (s[0] & (a[0] ^ b[0]))
				d[1] = a[1] ^ (s[1] & (a[1] ^ b[1]))
				d[2] = a[2] ^ (s[2] & (a[2] ^ b[2]))
				d[3] = a[3] ^ (s[3] & (a[3] ^ b[3]))
			}
		case cell.AOI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^((a[0] & b[0]) | c[0]), ^((a[1] & b[1]) | c[1]), ^((a[2] & b[2]) | c[2]), ^((a[3] & b[3]) | c[3])
			}
		case cell.AOI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0] = ^((a[0] & b[0]) | (c[0] & e[0]))
				d[1] = ^((a[1] & b[1]) | (c[1] & e[1]))
				d[2] = ^((a[2] & b[2]) | (c[2] & e[2]))
				d[3] = ^((a[3] & b[3]) | (c[3] & e[3]))
			}
		case cell.OAI21:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0], d[1], d[2], d[3] = ^((a[0] | b[0]) & c[0]), ^((a[1] | b[1]) & c[1]), ^((a[2] | b[2]) & c[2]), ^((a[3] | b[3]) & c[3])
			}
		case cell.OAI22:
			for i := range seg {
				o := &seg[i]
				a, b, c, e, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.in[3]), at4(v, o.out)
				d[0] = ^((a[0] | b[0]) & (c[0] | e[0]))
				d[1] = ^((a[1] | b[1]) & (c[1] | e[1]))
				d[2] = ^((a[2] | b[2]) & (c[2] | e[2]))
				d[3] = ^((a[3] | b[3]) & (c[3] | e[3]))
			}
		case cell.MAJ3:
			for i := range seg {
				o := &seg[i]
				a, b, c, d := at4(v, o.in[0]), at4(v, o.in[1]), at4(v, o.in[2]), at4(v, o.out)
				d[0] = (a[0] & b[0]) | (a[0] & c[0]) | (b[0] & c[0])
				d[1] = (a[1] & b[1]) | (a[1] & c[1]) | (b[1] & c[1])
				d[2] = (a[2] & b[2]) | (a[2] & c[2]) | (b[2] & c[2])
				d[3] = (a[3] & b[3]) | (a[3] & c[3]) | (b[3] & c[3])
			}
		default:
			for i := range seg {
				o := &seg[i]
				for g := int32(0); g < 4; g++ {
					v[o.out+g] = evalOpG(o, v, g)
				}
			}
		}
	}
}
