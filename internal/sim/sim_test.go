package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// buildCounter creates a 4-bit counter with an enable input and a `wrap`
// output that pulses when the counter is 15.
func buildCounter(t testing.TB) (*netlist.Netlist, []netlist.WireID, netlist.WireID, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("counter")
	en := b.Input("en")
	q := make([]netlist.WireID, 4)
	for i := range q {
		q[i] = b.FFPlaceholder("q"+string(rune('0'+i)), false, "cnt")
	}
	// increment: ripple through XOR/AND chain
	carry := b.Const(true)
	for i := range q {
		sum := b.Gate(cell.XOR2, q[i], carry)
		carry = b.Gate(cell.AND2, q[i], carry)
		next := b.Gate(cell.MUX2, q[i], sum, en)
		b.SetFFD(q[i], next)
	}
	wrap := b.Gate(cell.AND4, q[0], q[1], q[2], q[3])
	b.MarkOutput(wrap)
	nl, err := b.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	return nl, q, en, wrap
}

func value(m *Machine, q []netlist.WireID) uint64 { return m.ReadBus(q) }

func TestCounterCounts(t *testing.T) {
	nl, q, en, wrap := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	for i := 0; i < 20; i++ {
		m.Settle(NopEnv)
		if got := value(m, q); got != uint64(i%16) {
			t.Fatalf("cycle %d: counter = %d", i, got)
		}
		if m.Value(wrap) != (i%16 == 15) {
			t.Fatalf("cycle %d: wrap = %v", i, m.Value(wrap))
		}
		m.CommitFFs()
	}
	if m.Cycle != 20 {
		t.Errorf("cycle counter = %d", m.Cycle)
	}
}

func TestCounterHoldsWhenDisabled(t *testing.T) {
	nl, q, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	m.Run(5, NopEnv)
	if got := value(m, q); got != 5 {
		t.Fatalf("after 5 cycles: %d", got)
	}
	m.SetValue(en, false)
	m.Run(7, NopEnv)
	if got := value(m, q); got != 5 {
		t.Fatalf("hold failed: %d", got)
	}
}

func TestReset(t *testing.T) {
	nl, q, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	m.Run(9, NopEnv)
	m.Reset()
	if got := value(m, q); got != 0 {
		t.Fatalf("after reset: %d", got)
	}
	if m.Cycle != 0 {
		t.Fatalf("cycle not reset: %d", m.Cycle)
	}
}

func TestFFInitValues(t *testing.T) {
	b := netlist.NewBuilder("init")
	d := b.Input("d")
	q1 := b.FF("q1", d, true, "")
	q0 := b.FF("q0", d, false, "")
	b.MarkOutput(q1)
	b.MarkOutput(q0)
	m := New(b.MustNetlist())
	if !m.Value(q1) || m.Value(q0) {
		t.Error("initial FF values wrong")
	}
}

func TestFlipFF(t *testing.T) {
	nl, q, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	m.Run(3, NopEnv)
	if got := value(m, q); got != 3 {
		t.Fatalf("precondition: %d", got)
	}
	m.FlipFF(2) // bit 2: 3 -> 7
	if got := value(m, q); got != 7 {
		t.Fatalf("after flip: %d", got)
	}
	m.Step(NopEnv)
	if got := value(m, q); got != 8 {
		t.Fatalf("fault propagated wrong: %d", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	nl, q, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	m.Run(6, NopEnv)
	snap := m.FFState()
	ins := m.InputState()
	m.Run(4, NopEnv)
	if got := value(m, q); got != 10 {
		t.Fatalf("pre-restore: %d", got)
	}
	m.SetFFState(snap)
	m.SetInputState(ins)
	if got := value(m, q); got != 6 {
		t.Fatalf("post-restore: %d", got)
	}
	m.Run(4, NopEnv)
	if got := value(m, q); got != 10 {
		t.Fatalf("replay after restore: %d", got)
	}
}

func TestSetFFStateWrongSizePanics(t *testing.T) {
	nl, _, _, _ := buildCounter(t)
	m := New(nl)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.SetFFState(make([]bool, 1))
}

func TestEnvTwoPass(t *testing.T) {
	// A "memory": input echoes the counter value + 1, computed by the env
	// from the settled counter output in the same cycle.
	b := netlist.NewBuilder("env")
	data := b.Input("data")
	q := b.FFPlaceholder("q", false, "")
	// q toggles; out = q
	inv := b.Gate(cell.INV, q)
	b.SetFFD(q, inv)
	b.MarkOutput(q)
	captured := b.FF("cap", data, false, "")
	b.MarkOutput(captured)
	m := New(b.MustNetlist())

	env := EnvFunc(func(m *Machine) {
		// read the settled q and feed it back inverted
		m.SetValue(data, !m.Value(q))
	})
	m.Step(env)
	// cycle 0: q=0, env sets data=1, captured<-1
	if !m.Value(captured) {
		t.Error("env input not captured")
	}
	m.Step(env)
	// cycle 1: q=1, env sets data=0
	if m.Value(captured) {
		t.Error("env second cycle wrong")
	}
}

func TestTraceRecord(t *testing.T) {
	nl, q, en, wrap := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	tr := Record(m, NopEnv, 32)
	if tr.NumCycles() != 32 {
		t.Fatalf("cycles = %d", tr.NumCycles())
	}
	for cyc := 0; cyc < 32; cyc++ {
		var v uint64
		for i, w := range q {
			if tr.Get(cyc, w) {
				v |= 1 << i
			}
		}
		if v != uint64(cyc%16) {
			t.Fatalf("trace cycle %d: counter = %d", cyc, v)
		}
		if tr.Get(cyc, wrap) != (cyc%16 == 15) {
			t.Fatalf("trace cycle %d: wrap wrong", cyc)
		}
	}
}

func TestTraceRowRoundTrip(t *testing.T) {
	nl, _, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	tr := Record(m, NopEnv, 10)
	for cyc := 0; cyc < 10; cyc++ {
		vals := tr.RowValues(cyc)
		for w := 0; w < tr.NumWires; w++ {
			if vals[w] != tr.Get(cyc, netlist.WireID(w)) {
				t.Fatalf("cycle %d wire %d mismatch", cyc, w)
			}
		}
	}
}

func TestTraceSetAndAppendEmpty(t *testing.T) {
	tr := NewTrace(70) // spans two words
	tr.AppendEmpty()
	tr.Set(0, 69, true)
	if !tr.Get(0, 69) || tr.Get(0, 68) {
		t.Error("Set/Get wrong")
	}
	tr.Set(0, 69, false)
	if tr.Get(0, 69) {
		t.Error("clear failed")
	}
}

func TestRecordUntil(t *testing.T) {
	nl, q, en, _ := buildCounter(t)
	m := New(nl)
	m.SetValue(en, true)
	tr := RecordUntil(m, NopEnv, 100, func(m *Machine) bool {
		return m.ReadBus(q) == 9
	})
	if tr.NumCycles() != 10 {
		t.Fatalf("cycles = %d, want 10", tr.NumCycles())
	}
}

func TestTraceAppendWrongWidthPanics(t *testing.T) {
	tr := NewTrace(8)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.Append(make([]bool, 5))
}

// TestBusRoundTripQuick property-tests ReadBus/WriteBus against each other.
func TestBusRoundTripQuick(t *testing.T) {
	b := netlist.NewBuilder("bus")
	bus := make([]netlist.WireID, 16)
	for i := range bus {
		bus[i] = b.Input("")
	}
	out := b.Gate(cell.OR2, bus[0], bus[1])
	b.MarkOutput(out)
	m := New(b.MustNetlist())
	f := func(v uint16) bool {
		m.WriteBus(bus, uint64(v))
		return uint16(m.ReadBus(bus)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEvalCombForced: forcing a wire mid-circuit keeps it pinned while
// everything downstream follows.
func TestEvalCombForced(t *testing.T) {
	b := netlist.NewBuilder("forced")
	a := b.Input("a")
	n1 := b.GateNamed("n1", cell.INV, a)
	n2 := b.GateNamed("n2", cell.INV, n1)
	b.MarkOutput(n2)
	m := New(b.MustNetlist())
	m.SetValue(a, true)
	m.EvalCombForced(n1, true) // would be false normally
	if !m.Value(n1) || m.Value(n2) {
		t.Fatalf("forced eval wrong: n1=%v n2=%v", m.Value(n1), m.Value(n2))
	}
	m.EvalComb()
	if m.Value(n1) || !m.Value(n2) {
		t.Fatal("normal eval did not recover")
	}
}
