package sim

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Machine64 is a 64-lane bit-parallel gate-level simulator: every wire
// carries one uint64 whose bit l is the wire's value in lane l, so 64
// circuit instances advance per evaluation pass. This is the classic
// parallel fault-simulation technique, and it plays the role of the
// paper's hardware parallelism ("one FI controller distributes the FI
// campaign over several FPGAs"): the HAFI campaign controller batches up
// to 64 injection experiments that share a start checkpoint into one
// Machine64 run.
//
// All lanes share the same netlist; they diverge only through per-lane
// state (flip-flops, primary inputs) — exactly what a fault injection
// needs.
//
// The evaluation program is level-ordered and kind-grouped: gates are
// sorted by logic level (so dependencies always precede their consumers)
// and, within a level, by cell kind, so EvalComb dispatches one switch per
// run of same-kind gates instead of per gate — the inner loops are tight,
// branch-predictable and bounds-check friendly. An optional second-pass
// subprogram (SetEnvWrites) restricts the post-environment settle to the
// gates actually downstream of environment-written wires.
type Machine64 struct {
	NL     *netlist.Netlist
	Cycle  int
	values []uint64

	ops      []op64
	runs     []opRun
	envOps   []op64 // subprogram: gates downstream of env-written wires
	envRuns  []opRun
	ffD, ffQ []int32
	ffNext   []uint64
}

// op64 is one gate in the flattened bitwise evaluation program.
type op64 struct {
	kind    cell.Kind
	tt      uint32
	out     int32
	in      [4]int32
	numPins int8
	level   int32
}

// opRun is a contiguous span of same-kind ops in an evaluation program.
type opRun struct {
	kind       cell.Kind
	start, end int32
}

// NewMachine64 creates a 64-lane machine and resets it.
func NewMachine64(nl *netlist.Netlist) (*Machine64, error) {
	m := &Machine64{NL: nl, values: make([]uint64, nl.NumWires())}
	level := make([]int32, nl.NumWires())
	for _, gi := range nl.EvalOrder() {
		g := &nl.Gates[gi]
		if g.Cell.NumInputs() > 4 {
			return nil, fmt.Errorf("sim: cell %s has more than 4 inputs; not supported by the 64-lane evaluator", g.Cell.Name)
		}
		o := op64{kind: g.Cell.Kind, tt: g.Cell.TruthTable(), out: int32(g.Output), numPins: int8(len(g.Inputs))}
		for p, w := range g.Inputs {
			o.in[p] = int32(w)
			if level[w] >= o.level {
				o.level = level[w] + 1
			}
		}
		level[g.Output] = o.level
		m.ops = append(m.ops, o)
	}
	// Level-major, kind-minor order: equal-level gates are independent, so
	// grouping them by kind is a legal reordering of the topological sort.
	sort.SliceStable(m.ops, func(a, b int) bool {
		if m.ops[a].level != m.ops[b].level {
			return m.ops[a].level < m.ops[b].level
		}
		return m.ops[a].kind < m.ops[b].kind
	})
	m.runs = buildRuns(m.ops)
	m.ffD = make([]int32, len(nl.FFs))
	m.ffQ = make([]int32, len(nl.FFs))
	m.ffNext = make([]uint64, len(nl.FFs))
	for i := range nl.FFs {
		m.ffD[i] = int32(nl.FFs[i].D)
		m.ffQ[i] = int32(nl.FFs[i].Q)
	}
	m.Reset()
	return m, nil
}

// buildRuns splits an ordered op program into contiguous same-kind spans.
func buildRuns(ops []op64) []opRun {
	// In-run order follows the (level, kind) sort, so a span may cross a
	// level boundary and still respect dependencies.
	var runs []opRun
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].kind == ops[i].kind {
			j++
		}
		runs = append(runs, opRun{kind: ops[i].kind, start: int32(i), end: int32(j)})
		i = j
	}
	return runs
}

// SetEnvWrites declares the complete set of wires the lane environment may
// drive between the two settle passes. The machine precomputes the cone of
// gates downstream of those wires; Settle's second pass then evaluates
// only that subprogram — every other gate's inputs are untouched by the
// environment, so its pass-one output is already final. Calling this with
// an incomplete wire list yields stale simulations; leave it unset to keep
// the safe full second pass.
func (m *Machine64) SetEnvWrites(wires ...[]netlist.WireID) {
	inCone := make([]bool, m.NL.NumWires())
	for _, ws := range wires {
		for _, w := range ws {
			inCone[w] = true
		}
	}
	m.envOps = nil
	for _, o := range m.ops {
		hit := false
		for p := 0; p < int(o.numPins); p++ {
			if inCone[o.in[p]] {
				hit = true
				break
			}
		}
		if hit {
			inCone[o.out] = true
			m.envOps = append(m.envOps, o)
		}
	}
	m.envRuns = buildRuns(m.envOps)
}

// EnvConeSize reports how many gates the restricted second settle pass
// evaluates (0 when SetEnvWrites was never called).
func (m *Machine64) EnvConeSize() int { return len(m.envOps) }

// Reset initialises every lane with the flip-flop reset state.
func (m *Machine64) Reset() {
	for i := range m.values {
		m.values[i] = 0
	}
	for i := range m.NL.FFs {
		if m.NL.FFs[i].Init {
			m.values[m.NL.FFs[i].Q] = ^uint64(0)
		}
	}
	m.Cycle = 0
}

// Lanes returns the lane word of a wire (bit l = lane l).
func (m *Machine64) Lanes(w netlist.WireID) uint64 { return m.values[w] }

// SetLanes drives a wire in all lanes at once.
func (m *Machine64) SetLanes(w netlist.WireID, v uint64) { m.values[w] = v }

// Broadcast drives a wire to the same value in every lane.
func (m *Machine64) Broadcast(w netlist.WireID, v bool) {
	if v {
		m.values[w] = ^uint64(0)
	} else {
		m.values[w] = 0
	}
}

// FlipLane flips the stored value of flip-flop ffIndex in one lane only —
// the 64-lane SEU injection primitive.
func (m *Machine64) FlipLane(ffIndex, lane int) {
	m.values[m.NL.FFs[ffIndex].Q] ^= 1 << uint(lane)
}

// LoadState broadcasts a scalar flip-flop snapshot (from Machine.FFState)
// into every lane.
func (m *Machine64) LoadState(ffs []bool) {
	for i, v := range ffs {
		if v {
			m.values[m.ffQ[i]] = ^uint64(0)
		} else {
			m.values[m.ffQ[i]] = 0
		}
	}
}

// LoadInputs broadcasts scalar primary-input values into every lane.
func (m *Machine64) LoadInputs(ins []bool) {
	for i, w := range m.NL.Inputs {
		if ins[i] {
			m.values[w] = ^uint64(0)
		} else {
			m.values[w] = 0
		}
	}
}

// EvalComb evaluates all gates once, 64 lanes wide.
func (m *Machine64) EvalComb() { evalProgram(m.ops, m.runs, m.values) }

// evalProgram executes one kind-grouped op program: one switch dispatch
// per run, then a tight specialized loop over the span — the hot path of
// the whole batched campaign engine.
func evalProgram(ops []op64, runs []opRun, v []uint64) {
	for _, r := range runs {
		seg := ops[r.start:r.end]
		switch r.kind {
		case cell.TIE0:
			for i := range seg {
				v[seg[i].out] = 0
			}
		case cell.TIE1:
			for i := range seg {
				v[seg[i].out] = ^uint64(0)
			}
		case cell.BUF:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]]
			}
		case cell.INV:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^v[o.in[0]]
			}
		case cell.AND2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]]
			}
		case cell.AND3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]] & v[o.in[2]]
			}
		case cell.AND4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]]
			}
		case cell.NAND2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]])
			}
		case cell.NAND3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]])
			}
		case cell.NAND4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]])
			}
		case cell.OR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]]
			}
		case cell.OR3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]] | v[o.in[2]]
			}
		case cell.OR4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]]
			}
		case cell.NOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]])
			}
		case cell.NOR3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]])
			}
		case cell.NOR4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]])
			}
		case cell.XOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] ^ v[o.in[1]]
			}
		case cell.XNOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] ^ v[o.in[1]])
			}
		case cell.MUX2:
			for i := range seg {
				o := &seg[i]
				s := v[o.in[2]]
				v[o.out] = (^s & v[o.in[0]]) | (s & v[o.in[1]])
			}
		case cell.AOI21:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] & v[o.in[1]]) | v[o.in[2]])
			}
		case cell.AOI22:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] & v[o.in[1]]) | (v[o.in[2]] & v[o.in[3]]))
			}
		case cell.OAI21:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] | v[o.in[1]]) & v[o.in[2]])
			}
		case cell.OAI22:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] | v[o.in[1]]) & (v[o.in[2]] | v[o.in[3]]))
			}
		case cell.MAJ3:
			for i := range seg {
				o := &seg[i]
				a, b, c := v[o.in[0]], v[o.in[1]], v[o.in[2]]
				v[o.out] = (a & b) | (a & c) | (b & c)
			}
		default:
			// Generic fallback: Shannon expansion over the truth table.
			for i := range seg {
				o := &seg[i]
				v[o.out] = evalGeneric(o, v)
			}
		}
	}
}

// evalGeneric evaluates an arbitrary (≤4 input) cell lane-parallel from
// its truth table by OR-ing the active minterms, reading pins through the
// same cached values slice as the specialized cases.
func evalGeneric(o *op64, v []uint64) uint64 {
	var out uint64
	n := int(o.numPins)
	for minterm := 0; minterm < 1<<n; minterm++ {
		if o.tt>>uint(minterm)&1 == 0 {
			continue
		}
		term := ^uint64(0)
		for p := 0; p < n; p++ {
			if minterm>>uint(p)&1 == 1 {
				term &= v[o.in[p]]
			} else {
				term &= ^v[o.in[p]]
			}
		}
		out |= term
	}
	return out
}

// DivergenceMask compares the stored flip-flop state of every lane against
// a packed golden wire row (as returned by Trace.Row for the same cycle):
// bit l of the result is set when lane l differs from the golden reference
// in at least one flip-flop. Only the lanes in interest are reported, and
// the scan stops as soon as every interesting lane has diverged — the
// common case for freshly injected faults.
func (m *Machine64) DivergenceMask(goldenRow []uint64, interest uint64) uint64 {
	var div uint64
	v := m.values
	for _, q := range m.ffQ {
		g := goldenRow[q>>6] >> (uint(q) & 63) & 1
		div |= v[q] ^ -g
		if div&interest == interest {
			break
		}
	}
	return div & interest
}

// CommitFFs clocks every flip-flop in all lanes.
func (m *Machine64) CommitFFs() {
	for i, d := range m.ffD {
		m.ffNext[i] = m.values[d]
	}
	for i, q := range m.ffQ {
		m.values[q] = m.ffNext[i]
	}
	m.Cycle++
}

// Env64 services the environment of all 64 lanes between the two
// evaluation passes (per-lane memories, per-lane read data).
type Env64 interface {
	SetInputs64(m *Machine64)
}

// Env64Func adapts a function to Env64.
type Env64Func func(m *Machine64)

// SetInputs64 implements Env64.
func (f Env64Func) SetInputs64(m *Machine64) { f(m) }

// Settle runs the two-pass evaluation with the lane environment. When
// SetEnvWrites has declared the environment's write set, the second pass
// evaluates only the downstream cone of those wires.
func (m *Machine64) Settle(env Env64) {
	m.EvalComb()
	if env != nil {
		env.SetInputs64(m)
		if m.envOps != nil {
			evalProgram(m.envOps, m.envRuns, m.values)
		} else {
			m.EvalComb()
		}
	}
}

// Step advances one clock cycle in all lanes.
func (m *Machine64) Step(env Env64) {
	m.Settle(env)
	m.CommitFFs()
}

// ReadBusLane assembles the value of a bus in one lane.
func (m *Machine64) ReadBusLane(bus []netlist.WireID, lane int) uint64 {
	var v uint64
	bit := uint64(1) << uint(lane)
	for i, w := range bus {
		if m.values[w]&bit != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}
