package sim

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Machine64 is a 64-lane bit-parallel gate-level simulator: every wire
// carries one uint64 whose bit l is the wire's value in lane l, so 64
// circuit instances advance per evaluation pass. This is the classic
// parallel fault-simulation technique, and it plays the role of the
// paper's hardware parallelism ("one FI controller distributes the FI
// campaign over several FPGAs"): the HAFI campaign controller batches up
// to 64 injection experiments that share a start checkpoint into one
// Machine64 run.
//
// All lanes share the same netlist; they diverge only through per-lane
// state (flip-flops, primary inputs) — exactly what a fault injection
// needs.
type Machine64 struct {
	NL     *netlist.Netlist
	Cycle  int
	values []uint64

	ops      []op64
	ffD, ffQ []int32
	ffNext   []uint64
}

// op64 is one gate in the flattened bitwise evaluation program.
type op64 struct {
	kind    cell.Kind
	tt      uint32
	out     int32
	in      [4]int32
	numPins int8
}

// NewMachine64 creates a 64-lane machine and resets it.
func NewMachine64(nl *netlist.Netlist) (*Machine64, error) {
	m := &Machine64{NL: nl, values: make([]uint64, nl.NumWires())}
	for _, gi := range nl.EvalOrder() {
		g := &nl.Gates[gi]
		if g.Cell.NumInputs() > 4 {
			return nil, fmt.Errorf("sim: cell %s has more than 4 inputs; not supported by the 64-lane evaluator", g.Cell.Name)
		}
		o := op64{kind: g.Cell.Kind, tt: g.Cell.TruthTable(), out: int32(g.Output), numPins: int8(len(g.Inputs))}
		for p, w := range g.Inputs {
			o.in[p] = int32(w)
		}
		m.ops = append(m.ops, o)
	}
	m.ffD = make([]int32, len(nl.FFs))
	m.ffQ = make([]int32, len(nl.FFs))
	m.ffNext = make([]uint64, len(nl.FFs))
	for i := range nl.FFs {
		m.ffD[i] = int32(nl.FFs[i].D)
		m.ffQ[i] = int32(nl.FFs[i].Q)
	}
	m.Reset()
	return m, nil
}

// Reset initialises every lane with the flip-flop reset state.
func (m *Machine64) Reset() {
	for i := range m.values {
		m.values[i] = 0
	}
	for i := range m.NL.FFs {
		if m.NL.FFs[i].Init {
			m.values[m.NL.FFs[i].Q] = ^uint64(0)
		}
	}
	m.Cycle = 0
}

// Lanes returns the lane word of a wire (bit l = lane l).
func (m *Machine64) Lanes(w netlist.WireID) uint64 { return m.values[w] }

// SetLanes drives a wire in all lanes at once.
func (m *Machine64) SetLanes(w netlist.WireID, v uint64) { m.values[w] = v }

// Broadcast drives a wire to the same value in every lane.
func (m *Machine64) Broadcast(w netlist.WireID, v bool) {
	if v {
		m.values[w] = ^uint64(0)
	} else {
		m.values[w] = 0
	}
}

// FlipLane flips the stored value of flip-flop ffIndex in one lane only —
// the 64-lane SEU injection primitive.
func (m *Machine64) FlipLane(ffIndex, lane int) {
	m.values[m.NL.FFs[ffIndex].Q] ^= 1 << uint(lane)
}

// LoadState broadcasts a scalar flip-flop snapshot (from Machine.FFState)
// into every lane.
func (m *Machine64) LoadState(ffs []bool) {
	for i, v := range ffs {
		if v {
			m.values[m.ffQ[i]] = ^uint64(0)
		} else {
			m.values[m.ffQ[i]] = 0
		}
	}
}

// LoadInputs broadcasts scalar primary-input values into every lane.
func (m *Machine64) LoadInputs(ins []bool) {
	for i, w := range m.NL.Inputs {
		if ins[i] {
			m.values[w] = ^uint64(0)
		} else {
			m.values[w] = 0
		}
	}
}

// EvalComb evaluates all gates once, 64 lanes wide.
func (m *Machine64) EvalComb() {
	v := m.values
	for i := range m.ops {
		o := &m.ops[i]
		var out uint64
		switch o.kind {
		case cell.TIE0:
			out = 0
		case cell.TIE1:
			out = ^uint64(0)
		case cell.BUF:
			out = v[o.in[0]]
		case cell.INV:
			out = ^v[o.in[0]]
		case cell.AND2:
			out = v[o.in[0]] & v[o.in[1]]
		case cell.AND3:
			out = v[o.in[0]] & v[o.in[1]] & v[o.in[2]]
		case cell.AND4:
			out = v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]]
		case cell.NAND2:
			out = ^(v[o.in[0]] & v[o.in[1]])
		case cell.NAND3:
			out = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]])
		case cell.NAND4:
			out = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]])
		case cell.OR2:
			out = v[o.in[0]] | v[o.in[1]]
		case cell.OR3:
			out = v[o.in[0]] | v[o.in[1]] | v[o.in[2]]
		case cell.OR4:
			out = v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]]
		case cell.NOR2:
			out = ^(v[o.in[0]] | v[o.in[1]])
		case cell.NOR3:
			out = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]])
		case cell.NOR4:
			out = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]])
		case cell.XOR2:
			out = v[o.in[0]] ^ v[o.in[1]]
		case cell.XNOR2:
			out = ^(v[o.in[0]] ^ v[o.in[1]])
		case cell.MUX2:
			s := v[o.in[2]]
			out = (^s & v[o.in[0]]) | (s & v[o.in[1]])
		case cell.AOI21:
			out = ^((v[o.in[0]] & v[o.in[1]]) | v[o.in[2]])
		case cell.AOI22:
			out = ^((v[o.in[0]] & v[o.in[1]]) | (v[o.in[2]] & v[o.in[3]]))
		case cell.OAI21:
			out = ^((v[o.in[0]] | v[o.in[1]]) & v[o.in[2]])
		case cell.OAI22:
			out = ^((v[o.in[0]] | v[o.in[1]]) & (v[o.in[2]] | v[o.in[3]]))
		case cell.MAJ3:
			a, b, c := v[o.in[0]], v[o.in[1]], v[o.in[2]]
			out = (a & b) | (a & c) | (b & c)
		default:
			// Generic fallback: Shannon expansion over the truth table.
			out = m.evalGeneric(o)
		}
		v[o.out] = out
	}
}

// evalGeneric evaluates an arbitrary (≤4 input) cell lane-parallel from
// its truth table by OR-ing the active minterms.
func (m *Machine64) evalGeneric(o *op64) uint64 {
	var out uint64
	n := int(o.numPins)
	for minterm := 0; minterm < 1<<n; minterm++ {
		if o.tt>>uint(minterm)&1 == 0 {
			continue
		}
		term := ^uint64(0)
		for p := 0; p < n; p++ {
			if minterm>>uint(p)&1 == 1 {
				term &= m.values[o.in[p]]
			} else {
				term &= ^m.values[o.in[p]]
			}
		}
		out |= term
	}
	return out
}

// CommitFFs clocks every flip-flop in all lanes.
func (m *Machine64) CommitFFs() {
	for i, d := range m.ffD {
		m.ffNext[i] = m.values[d]
	}
	for i, q := range m.ffQ {
		m.values[q] = m.ffNext[i]
	}
	m.Cycle++
}

// Env64 services the environment of all 64 lanes between the two
// evaluation passes (per-lane memories, per-lane read data).
type Env64 interface {
	SetInputs64(m *Machine64)
}

// Env64Func adapts a function to Env64.
type Env64Func func(m *Machine64)

// SetInputs64 implements Env64.
func (f Env64Func) SetInputs64(m *Machine64) { f(m) }

// Settle runs the two-pass evaluation with the lane environment.
func (m *Machine64) Settle(env Env64) {
	m.EvalComb()
	if env != nil {
		env.SetInputs64(m)
		m.EvalComb()
	}
}

// Step advances one clock cycle in all lanes.
func (m *Machine64) Step(env Env64) {
	m.Settle(env)
	m.CommitFFs()
}

// ReadBusLane assembles the value of a bus in one lane.
func (m *Machine64) ReadBusLane(bus []netlist.WireID, lane int) uint64 {
	var v uint64
	bit := uint64(1) << uint(lane)
	for i, w := range bus {
		if m.values[w]&bit != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}
