package sim

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// Machine64 is a 64-lane bit-parallel gate-level simulator: every wire
// carries one uint64 whose bit l is the wire's value in lane l, so 64
// circuit instances advance per evaluation pass. This is the classic
// parallel fault-simulation technique, and it plays the role of the
// paper's hardware parallelism ("one FI controller distributes the FI
// campaign over several FPGAs"): the HAFI campaign controller batches
// injection experiments that share a start checkpoint into one machine
// run.
//
// Machine64 is the W=1 instantiation of the width-parameterized MachineW
// (see machinew.go): it embeds the wide machine by pointer, so every
// MachineW field and method is promoted, state is shared with any wide
// view of the same device, and the W=1 evaluation program is bit-for-bit
// the classic 64-lane program. The wrapper adds only the historical
// single-word signatures (Lanes, DivergenceMask, Env64 Settle/Step, ...)
// so existing callers and journals are untouched.
//
// All lanes share the same netlist; they diverge only through per-lane
// state (flip-flops, primary inputs) — exactly what a fault injection
// needs.
type Machine64 struct {
	*MachineW
}

// op64 is one gate in the flattened bitwise evaluation program. In a
// width-W program the out/in indices are pre-scaled by W.
type op64 struct {
	kind    cell.Kind
	tt      uint32
	out     int32
	in      [4]int32
	numPins int8
	level   int32
}

// opRun is a contiguous span of same-kind ops in an evaluation program.
type opRun struct {
	kind       cell.Kind
	start, end int32
}

// NewMachine64 creates a 64-lane machine and resets it.
func NewMachine64(nl *netlist.Netlist) (*Machine64, error) {
	mw, err := NewMachineW(nl, 1)
	if err != nil {
		return nil, err
	}
	return &Machine64{MachineW: mw}, nil
}

// buildRuns splits an ordered op program into contiguous same-kind spans.
func buildRuns(ops []op64) []opRun {
	// In-run order follows the (level, kind) sort, so a span may cross a
	// level boundary and still respect dependencies.
	var runs []opRun
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].kind == ops[i].kind {
			j++
		}
		runs = append(runs, opRun{kind: ops[i].kind, start: int32(i), end: int32(j)})
		i = j
	}
	return runs
}

// Lanes returns the lane word of a wire (bit l = lane l).
func (m *Machine64) Lanes(w netlist.WireID) uint64 { return m.values[w] }

// SetLanes drives a wire in all lanes at once.
func (m *Machine64) SetLanes(w netlist.WireID, v uint64) { m.values[w] = v }

// evalProgram executes one kind-grouped W=1 op program: one switch
// dispatch per run, then a tight specialized loop over the span — the hot
// path of the 64-lane engine (evalProgram4 is its 256-lane sibling).
func evalProgram(ops []op64, runs []opRun, v []uint64) {
	for _, r := range runs {
		seg := ops[r.start:r.end]
		switch r.kind {
		case cell.TIE0:
			for i := range seg {
				v[seg[i].out] = 0
			}
		case cell.TIE1:
			for i := range seg {
				v[seg[i].out] = ^uint64(0)
			}
		case cell.BUF:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]]
			}
		case cell.INV:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^v[o.in[0]]
			}
		case cell.AND2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]]
			}
		case cell.AND3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]] & v[o.in[2]]
			}
		case cell.AND4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]]
			}
		case cell.NAND2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]])
			}
		case cell.NAND3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]])
			}
		case cell.NAND4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] & v[o.in[1]] & v[o.in[2]] & v[o.in[3]])
			}
		case cell.OR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]]
			}
		case cell.OR3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]] | v[o.in[2]]
			}
		case cell.OR4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]]
			}
		case cell.NOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]])
			}
		case cell.NOR3:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]])
			}
		case cell.NOR4:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] | v[o.in[1]] | v[o.in[2]] | v[o.in[3]])
			}
		case cell.XOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = v[o.in[0]] ^ v[o.in[1]]
			}
		case cell.XNOR2:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^(v[o.in[0]] ^ v[o.in[1]])
			}
		case cell.MUX2:
			// a ^ (s & (a^b)): one op fewer than (^s&a)|(s&b), and MUX2 is
			// the most common cell on both cores.
			for i := range seg {
				o := &seg[i]
				a := v[o.in[0]]
				v[o.out] = a ^ (v[o.in[2]] & (a ^ v[o.in[1]]))
			}
		case cell.AOI21:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] & v[o.in[1]]) | v[o.in[2]])
			}
		case cell.AOI22:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] & v[o.in[1]]) | (v[o.in[2]] & v[o.in[3]]))
			}
		case cell.OAI21:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] | v[o.in[1]]) & v[o.in[2]])
			}
		case cell.OAI22:
			for i := range seg {
				o := &seg[i]
				v[o.out] = ^((v[o.in[0]] | v[o.in[1]]) & (v[o.in[2]] | v[o.in[3]]))
			}
		case cell.MAJ3:
			for i := range seg {
				o := &seg[i]
				a, b, c := v[o.in[0]], v[o.in[1]], v[o.in[2]]
				v[o.out] = (a & b) | (a & c) | (b & c)
			}
		default:
			// Generic fallback: Shannon expansion over the truth table.
			for i := range seg {
				o := &seg[i]
				v[o.out] = evalGeneric(o, v)
			}
		}
	}
}

// evalGeneric evaluates an arbitrary (≤4 input) cell lane-parallel from
// its truth table by OR-ing the active minterms, reading pins through the
// same cached values slice as the specialized cases.
func evalGeneric(o *op64, v []uint64) uint64 {
	var out uint64
	n := int(o.numPins)
	for minterm := 0; minterm < 1<<n; minterm++ {
		if o.tt>>uint(minterm)&1 == 0 {
			continue
		}
		term := ^uint64(0)
		for p := 0; p < n; p++ {
			if minterm>>uint(p)&1 == 1 {
				term &= v[o.in[p]]
			} else {
				term &= ^v[o.in[p]]
			}
		}
		out |= term
	}
	return out
}

// DivergenceMask compares the stored flip-flop state of every lane against
// a packed golden wire row (as returned by Trace.Row for the same cycle):
// bit l of the result is set when lane l differs from the golden reference
// in at least one flip-flop. Only the lanes in interest are reported, and
// the scan stops as soon as every interesting lane has diverged — the
// common case for freshly injected faults.
func (m *Machine64) DivergenceMask(goldenRow []uint64, interest uint64) uint64 {
	return m.DivergenceMaskG(goldenRow, interest, 0)
}

// Env64 services the environment of all 64 lanes between the two
// evaluation passes (per-lane memories, per-lane read data).
type Env64 interface {
	SetInputs64(m *Machine64)
}

// Env64Func adapts a function to Env64.
type Env64Func func(m *Machine64)

// SetInputs64 implements Env64.
func (f Env64Func) SetInputs64(m *Machine64) { f(m) }

// Settle runs the two-pass evaluation with the lane environment. When
// SetEnvWrites has declared the environment's write set, the second pass
// evaluates only the downstream cone of those wires.
func (m *Machine64) Settle(env Env64) {
	m.EvalComb()
	if env != nil {
		env.SetInputs64(m)
		if m.envOps != nil {
			evalProgram(m.envOps, m.envRuns, m.values)
		} else {
			m.EvalComb()
		}
	}
}

// Step advances one clock cycle in all lanes.
func (m *Machine64) Step(env Env64) {
	m.Settle(env)
	m.CommitFFs()
}
