package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPrepareCases(t *testing.T) {
	a := PrepareAVR()
	m := PrepareMSP430()
	if a.Name != "AVR" || m.Name != "MSP430" {
		t.Fatal("names")
	}
	for _, c := range []*CPUCase{a, m} {
		if c.TraceFib.NumCycles() != 8500 || c.TraceConv.NumCycles() != 8500 {
			t.Errorf("%s: traces must span 8500 cycles", c.Name)
		}
		if len(c.FaultAll) != c.TotalFFs {
			t.Errorf("%s: fault set does not cover all FFs", c.Name)
		}
		if len(c.FaultNoRF)+c.RegFileFFs != c.TotalFFs {
			t.Errorf("%s: FF accounting broken", c.Name)
		}
	}
	// Caching: a second call returns the same case.
	if PrepareAVR() != a {
		t.Error("PrepareAVR not cached")
	}
}

func TestTable1AndFormat(t *testing.T) {
	rows := Table1(PrepareAVR(), core.DefaultSearchParams())
	if len(rows) != 2 || rows[0].FaultSet != "FF" || rows[1].FaultSet != "FF w/o RF" {
		t.Fatalf("rows = %+v", rows)
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Faulty Wires", "Avg. Cone", "#Unmaskable", "#MATE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q", want)
		}
	}
}

func TestPerfAndFormat(t *testing.T) {
	tab := Perf(PrepareAVR(), core.DefaultSearchParams())
	for _, prog := range []string{"fib", "conv"} {
		for _, fs := range []string{"FF", "FF w/o RF"} {
			c := tab.Cells[prog][fs]
			if c == nil {
				t.Fatalf("missing cell %s/%s", prog, fs)
			}
			if c.MaskedComplete <= 0 || c.MaskedComplete >= 1 {
				t.Errorf("%s/%s: reduction %v out of range", prog, fs, c.MaskedComplete)
			}
			for _, n := range TopNs {
				if _, ok := c.TopSelFib[n]; !ok {
					t.Errorf("%s/%s: missing top-%d (fib)", prog, fs, n)
				}
				if _, ok := c.TopSelConv[n]; !ok {
					t.Errorf("%s/%s: missing top-%d (conv)", prog, fs, n)
				}
			}
		}
	}
	out := FormatPerf(tab, 2)
	for _, want := range []string{"Table 2", "#Effective MATEs", "Masked Faults", "Top 50"} {
		if !strings.Contains(out, want) {
			t.Errorf("perf table missing %q", want)
		}
	}
}

func TestFigure1Render(t *testing.T) {
	out := Figure1(8)
	for _, want := range []string{
		"cone(d)",
		"d, g, k, l", // the paper's cone for input d
		"MATE",
		"no MATE for e",
		"wire a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1CircuitMatchesPaper(t *testing.T) {
	nl, w := Figure1Circuit()
	cone := core.ComputeCone(nl, w["d"])
	if cone.NumGates() != 3 {
		t.Errorf("cone(d) gates = %d, want 3", cone.NumGates())
	}
	borders := cone.BorderWires(nl)
	if len(borders) != 3 {
		t.Errorf("borders = %d, want 3 (c, f, h)", len(borders))
	}
}

func TestLUTCostsAndFormat(t *testing.T) {
	rows := LUTCosts(PrepareAVR(), core.DefaultSearchParams())
	if len(rows) != len(TopNs) {
		t.Fatalf("rows = %d", len(rows))
	}
	prev := 0
	for _, r := range rows {
		if r.LUTs < prev {
			t.Error("LUT cost must not shrink with larger top-N")
		}
		prev = r.LUTs
	}
	out := FormatLUT(rows)
	if !strings.Contains(out, "Virtex-6") {
		t.Errorf("LUT table missing device column:\n%s", out)
	}
}

func TestCampaignExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is expensive")
	}
	row, err := Campaign(context.Background(), PrepareAVR(), "fib", 900, core.DefaultSearchParams(), false)
	if err != nil {
		t.Fatal(err)
	}
	if row.Result.Total == 0 || row.Result.Skipped == 0 {
		t.Fatalf("campaign result %+v", row.Result)
	}
	out := FormatCampaign([]*CampaignRow{row})
	if !strings.Contains(out, "AVR") || !strings.Contains(out, "fib") {
		t.Errorf("campaign table:\n%s", out)
	}
}
