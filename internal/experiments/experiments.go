// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) against the rebuilt substrate: it prepares the two
// processor cases (netlist + fib/conv traces), runs the MATE search with
// the paper's heuristic parameters, performs the trace-driven MATE
// selection and fault-space accounting behind Tables 2 and 3, and provides
// the Figure 1 example and the Section 6.1 LUT-cost summary. The cmd/
// tools, the benchmark harness and the reproduction tests all build on this
// package so that every consumer reports identical numbers.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/hafi"
	"repro/internal/intercycle"
	"repro/internal/isafi"
	"repro/internal/netlist"
	"repro/internal/progs"
	"repro/internal/prune"
	"repro/internal/sim"
)

// CPUCase bundles one processor with its two recorded workload traces.
type CPUCase struct {
	Name       string
	NL         *netlist.Netlist
	FaultAll   []netlist.WireID // every flip-flop ("FF")
	FaultNoRF  []netlist.WireID // excluding the register file ("FF w/o RF")
	TraceFib   *sim.Trace
	TraceConv  *sim.Trace
	NewRun     func(prog []uint16) hafi.Run
	NewRun64   func(prog []uint16) (hafi.Run64, error)
	NewRunW    func(prog []uint16, lanes int) (hafi.RunW, error)
	FibProg    []uint16
	ConvProg   []uint16
	RegGroup   string
	TotalFFs   int
	RegFileFFs int
}

var (
	prepOnce sync.Once
	prepAVR  *CPUCase
	prepMSP  *CPUCase
)

// PrepareAVR builds the AVR-class case: core netlist plus 8500-cycle fib
// and conv traces. Results are cached process-wide (construction is
// deterministic).
func PrepareAVR() *CPUCase {
	prepare()
	return prepAVR
}

// PrepareMSP430 builds the MSP430-class case.
func PrepareMSP430() *CPUCase {
	prepare()
	return prepMSP
}

func prepare() {
	prepOnce.Do(func() {
		ac := avr.NewCore()
		fib := progs.AVRFib()
		conv := progs.AVRConv()
		prepAVR = &CPUCase{
			Name:      "AVR",
			NL:        ac.NL,
			FaultAll:  ac.NL.FFQWires(),
			FaultNoRF: ac.NL.FFQWires(avr.GroupRegFile),
			TraceFib:  avr.NewSystem(ac, fib).Record(progs.TraceCycles),
			TraceConv: avr.NewSystem(avr.NewCore(), conv).Record(progs.TraceCycles),
			NewRun:    func(p []uint16) hafi.Run { return hafi.NewAVRRun(avr.NewCore(), p) },
			NewRun64:  func(p []uint16) (hafi.Run64, error) { return hafi.NewAVRRun64(avr.NewCore(), p) },
			NewRunW:   func(p []uint16, lanes int) (hafi.RunW, error) { return hafi.NewAVRRunW(avr.NewCore(), p, lanes) },
			FibProg:   fib, ConvProg: conv,
			RegGroup: avr.GroupRegFile,
		}
		prepAVR.TotalFFs = len(ac.NL.FFs)
		prepAVR.RegFileFFs = prepAVR.TotalFFs - len(prepAVR.FaultNoRF)

		mc := msp430.NewCore()
		mfib := progs.MSP430Fib()
		mconv := progs.MSP430Conv()
		prepMSP = &CPUCase{
			Name:      "MSP430",
			NL:        mc.NL,
			FaultAll:  mc.NL.FFQWires(),
			FaultNoRF: mc.NL.FFQWires(msp430.GroupRegFile),
			TraceFib:  msp430.NewSystem(mc, mfib).Record(progs.TraceCycles),
			TraceConv: msp430.NewSystem(msp430.NewCore(), mconv).Record(progs.TraceCycles),
			NewRun:    func(p []uint16) hafi.Run { return hafi.NewMSP430Run(msp430.NewCore(), p) },
			NewRun64:  func(p []uint16) (hafi.Run64, error) { return hafi.NewMSP430Run64(msp430.NewCore(), p) },
			NewRunW:   func(p []uint16, lanes int) (hafi.RunW, error) { return hafi.NewMSP430RunW(msp430.NewCore(), p, lanes) },
			FibProg:   mfib, ConvProg: mconv,
			RegGroup: msp430.GroupRegFile,
		}
		prepMSP.TotalFFs = len(mc.NL.FFs)
		prepMSP.RegFileFFs = prepMSP.TotalFFs - len(prepMSP.FaultNoRF)
	})
}

// ---------------------------------------------------------------------------
// Table 1: statistics of the heuristic MATE search.
// ---------------------------------------------------------------------------

// Table1Row is one column of the paper's Table 1 (one CPU × one fault set).
type Table1Row struct {
	CPU         string
	FaultSet    string // "FF" or "FF w/o RF"
	FaultyWires int
	AvgCone     float64
	MedianCone  int
	RunTime     time.Duration
	Unmaskable  int
	Candidates  int64
	MATEs       int

	Result *core.SearchResult
}

// Table1 runs the MATE search for both fault sets of one CPU.
func Table1(c *CPUCase, params core.SearchParams) []Table1Row {
	var rows []Table1Row
	for _, fs := range []struct {
		name  string
		wires []netlist.WireID
	}{{"FF", c.FaultAll}, {"FF w/o RF", c.FaultNoRF}} {
		res := core.Search(c.NL, fs.wires, params)
		rows = append(rows, Table1Row{
			CPU:         c.Name,
			FaultSet:    fs.name,
			FaultyWires: len(fs.wires),
			AvgCone:     res.AvgConeGates(),
			MedianCone:  res.MedianConeGates(),
			RunTime:     res.Elapsed,
			Unmaskable:  res.Unmaskable,
			Candidates:  res.TotalCandidates,
			MATEs:       res.Set.Size(),
			Result:      res,
		})
	}
	return rows
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Statistics for the heuristic MATE search.\n")
	fmt.Fprintf(&sb, "%-28s", "")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%18s", r.CPU+" "+r.FaultSet)
	}
	sb.WriteByte('\n')
	line := func(label string, f func(Table1Row) string) {
		fmt.Fprintf(&sb, "%-28s", label)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%18s", f(r))
		}
		sb.WriteByte('\n')
	}
	line("Faulty Wires", func(r Table1Row) string { return fmt.Sprint(r.FaultyWires) })
	line("Avg. Cone [#gates]", func(r Table1Row) string { return fmt.Sprintf("%.0f", r.AvgCone) })
	line("Med. Cone [#gates]", func(r Table1Row) string { return fmt.Sprint(r.MedianCone) })
	line("Run Time [s]", func(r Table1Row) string { return fmt.Sprintf("%.3f", r.RunTime.Seconds()) })
	line("#Unmaskable", func(r Table1Row) string { return fmt.Sprint(r.Unmaskable) })
	line("#MATE candid.", func(r Table1Row) string { return fmt.Sprint(r.Candidates) })
	line("#MATE", func(r Table1Row) string { return fmt.Sprint(r.MATEs) })
	return sb.String()
}

// ---------------------------------------------------------------------------
// Tables 2 and 3: MATE performance (fault-space reduction).
// ---------------------------------------------------------------------------

// TopNs are the selection sizes evaluated in the paper.
var TopNs = []int{10, 50, 100, 200}

// PerfCell is one (program × fault set) column of Table 2/3.
type PerfCell struct {
	EffectiveMATEs int
	AvgInputs      float64
	StdInputs      float64
	MaskedComplete float64 // fraction, complete MATE set
	// TopSelFib[n] / TopSelConv[n]: reduction with the top-n set selected
	// on the fib (resp. conv) trace, evaluated on THIS column's trace.
	TopSelFib  map[int]float64
	TopSelConv map[int]float64
}

// PerfTable is the full Table 2 (AVR) or Table 3 (MSP430).
type PerfTable struct {
	CPU string
	// Cells indexed by [program][faultset]: program "fib"/"conv",
	// faultset "FF"/"FF w/o RF".
	Cells map[string]map[string]*PerfCell
}

// Perf computes the paper's Table 2/3 for one CPU: complete-set reduction,
// hit-counter top-N selection on each trace, and cross-validation of the
// selected sets on the other trace.
func Perf(c *CPUCase, params core.SearchParams) *PerfTable {
	setAll := core.Search(c.NL, c.FaultAll, params).Set
	setNoRF := core.Search(c.NL, c.FaultNoRF, params).Set

	table := &PerfTable{CPU: c.Name, Cells: map[string]map[string]*PerfCell{
		"fib": {}, "conv": {},
	}}
	traces := map[string]*sim.Trace{"fib": c.TraceFib, "conv": c.TraceConv}
	faultSets := map[string][]netlist.WireID{"FF": c.FaultAll, "FF w/o RF": c.FaultNoRF}
	sets := map[string]*core.MATESet{"FF": setAll, "FF w/o RF": setNoRF}

	// Pre-select top-N sets per (fault set × selection trace).
	type selKey struct{ fs, prog string }
	selected := map[selKey]map[int]*core.MATESet{}
	for fs, set := range sets {
		for prog, tr := range traces {
			m := map[int]*core.MATESet{}
			for _, n := range TopNs {
				m[n] = prune.SelectTopN(set, tr, faultSets[fs], n)
			}
			selected[selKey{fs, prog}] = m
		}
	}

	for prog, tr := range traces {
		for fs, wires := range faultSets {
			res := prune.Evaluate(sets[fs], tr, wires)
			cellv := &PerfCell{
				EffectiveMATEs: res.EffectiveMATEs,
				AvgInputs:      res.AvgInputs,
				StdInputs:      res.StdInputs,
				MaskedComplete: res.Reduction(),
				TopSelFib:      map[int]float64{},
				TopSelConv:     map[int]float64{},
			}
			for _, n := range TopNs {
				cellv.TopSelFib[n] = prune.Evaluate(selected[selKey{fs, "fib"}][n], tr, wires).Reduction()
				cellv.TopSelConv[n] = prune.Evaluate(selected[selKey{fs, "conv"}][n], tr, wires).Reduction()
			}
			table.Cells[prog][fs] = cellv
		}
	}
	return table
}

// FormatPerf renders a PerfTable in the paper's Table 2/3 layout.
func FormatPerf(t *PerfTable, tableNo int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table %d: %s MATE Performance (8500-cycle traces).\n", tableNo, t.CPU)
	fmt.Fprintf(&sb, "%-26s%12s%14s%12s%14s\n", "", "fib FF", "fib FF w/o RF", "conv FF", "conv FF w/o RF")
	cellOf := func(prog, fs string) *PerfCell { return t.Cells[prog][fs] }
	line := func(label string, f func(c *PerfCell) string) {
		fmt.Fprintf(&sb, "%-26s%12s%14s%12s%14s\n", label,
			f(cellOf("fib", "FF")), f(cellOf("fib", "FF w/o RF")),
			f(cellOf("conv", "FF")), f(cellOf("conv", "FF w/o RF")))
	}
	line("#Effective MATEs", func(c *PerfCell) string { return fmt.Sprint(c.EffectiveMATEs) })
	line("Avg. #inputs", func(c *PerfCell) string { return fmt.Sprintf("%.1f±%.1f", c.AvgInputs, c.StdInputs) })
	line("Masked Faults", func(c *PerfCell) string { return fmt.Sprintf("%.2f%%", 100*c.MaskedComplete) })
	for _, n := range TopNs {
		n := n
		line(fmt.Sprintf("sel. fib  Top %d", n), func(c *PerfCell) string {
			return fmt.Sprintf("%.2f%%", 100*c.TopSelFib[n])
		})
	}
	for _, n := range TopNs {
		n := n
		line(fmt.Sprintf("sel. conv Top %d", n), func(c *PerfCell) string {
			return fmt.Sprintf("%.2f%%", 100*c.TopSelConv[n])
		})
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 1: the worked example.
// ---------------------------------------------------------------------------

// Figure1Circuit builds the paper's Figure 1a example circuit and returns
// the netlist plus the wire map (inputs a..e,h; internal f,g,j; outputs
// k,l,m).
func Figure1Circuit() (*netlist.Netlist, map[string]netlist.WireID) {
	b := netlist.NewBuilder("fig1a")
	w := map[string]netlist.WireID{}
	for _, n := range []string{"a", "b", "c", "d", "e", "h"} {
		w[n] = b.Input(n)
	}
	w["j"] = b.GateNamed("j", cell.NAND2, w["a"], w["b"])
	w["f"] = b.GateNamed("f", cell.OR2, w["j"], w["e"])
	w["g"] = b.GateNamed("g", cell.XOR2, w["c"], w["d"])
	w["k"] = b.GateNamed("k", cell.AND2, w["g"], w["f"])
	w["l"] = b.GateNamed("l", cell.OR2, w["g"], w["h"])
	w["m"] = b.GateNamed("m", cell.XOR2, w["e"], w["c"])
	b.MarkOutput(w["k"])
	b.MarkOutput(w["l"])
	b.MarkOutput(w["m"])
	return b.MustNetlist(), w
}

// Figure1 reproduces both halves of Figure 1: the fault-cone/MATE analysis
// of the example circuit (1a) and a pruned fault-space grid over a short
// random stimulus (1b). The returned string is the rendered figure.
func Figure1(cycles int) string {
	nl, w := Figure1Circuit()
	var sb strings.Builder

	inputs := []netlist.WireID{w["a"], w["b"], w["c"], w["d"], w["e"], w["h"]}
	res := core.Search(nl, inputs, core.DefaultSearchParams())

	sb.WriteString("Figure 1a: fault cones and MATEs of the example circuit\n")
	cone := core.ComputeCone(nl, w["d"])
	var coneNames, borderNames []string
	for id := netlist.WireID(0); int(id) < nl.NumWires(); id++ {
		if cone.InCone[id] {
			coneNames = append(coneNames, nl.WireName(id))
		}
	}
	for _, bw := range cone.BorderWires(nl) {
		borderNames = append(borderNames, nl.WireName(bw))
	}
	fmt.Fprintf(&sb, "  cone(d)   = {%s}, border = {%s}\n",
		strings.Join(coneNames, ", "), strings.Join(borderNames, ", "))
	for _, m := range res.Set.MATEs {
		var masks []string
		for _, mw := range m.Masks {
			masks = append(masks, nl.WireName(mw))
		}
		fmt.Fprintf(&sb, "  MATE %-14s masks {%s}\n", m.String(nl), strings.Join(masks, ", "))
	}
	for i, rep := range res.Reports {
		if rep.Unmaskable {
			fmt.Fprintf(&sb, "  no MATE for %s (unmaskable path)\n", nl.WireName(inputs[i]))
		}
	}

	// Figure 1b: per-cycle pruning grid under a deterministic stimulus.
	sb.WriteString("\nFigure 1b: fault-space pruning over the trace (X = pruned/benign, . = possibly effective)\n")
	m := sim.New(nl)
	cnt := 0
	env := sim.EnvFunc(func(m *sim.Machine) {
		for i, in := range inputs {
			m.SetValue(in, (cnt>>uint(i))&1 == 1)
		}
		cnt++
	})
	tr := sim.Record(m, env, cycles)
	grid := prune.MaskedGrid(res.Set, tr, inputs)
	names := []string{"a", "b", "c", "d", "e", "h"}
	for i, name := range names {
		fmt.Fprintf(&sb, "  wire %-2s |", name)
		for cyc := 0; cyc < tr.NumCycles(); cyc++ {
			if grid[cyc][i] {
				sb.WriteString(" X")
			} else {
				sb.WriteString(" .")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Section 6.1: FPGA LUT costs.
// ---------------------------------------------------------------------------

// LUTRow summarises the hardware cost of a top-N MATE set.
type LUTRow struct {
	CPU      string
	TopN     int
	LUTs     int
	VsSmall  float64 // fraction of a 1500-LUT FI controller
	VsLarge  float64 // fraction of a 6000-LUT FI controller
	VsDevice float64 // fraction of a midrange Virtex-6
}

// LUTCosts computes the Section 6.1 cost table for one CPU using the
// fib-selected top-N sets over all flip-flops.
func LUTCosts(c *CPUCase, params core.SearchParams) []LUTRow {
	set := core.Search(c.NL, c.FaultAll, params).Set
	var rows []LUTRow
	for _, n := range TopNs {
		sel := prune.SelectTopN(set, c.TraceFib, c.FaultAll, n)
		cost := hafi.LUTCost(sel)
		rows = append(rows, LUTRow{
			CPU:      c.Name,
			TopN:     n,
			LUTs:     cost,
			VsSmall:  float64(cost) / hafi.FIControllerLUTsLow,
			VsLarge:  float64(cost) / hafi.FIControllerLUTsHigh,
			VsDevice: float64(cost) / hafi.Virtex6LUTs,
		})
	}
	return rows
}

// FormatLUT renders the LUT-cost rows.
func FormatLUT(rows []LUTRow) string {
	var sb strings.Builder
	sb.WriteString("Section 6.1: FPGA cost of selected MATE sets (6-input LUTs)\n")
	fmt.Fprintf(&sb, "%-8s%8s%8s%16s%16s%16s\n", "CPU", "Top-N", "LUTs",
		"vs 1.5k ctrl", "vs 6k ctrl", "vs Virtex-6")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s%8d%8d%15.2f%%%15.2f%%%15.3f%%\n",
			r.CPU, r.TopN, r.LUTs, 100*r.VsSmall, 100*r.VsLarge, 100*r.VsDevice)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Campaign reduction (abstract / Section 8 claim).
// ---------------------------------------------------------------------------

// CampaignRow summarises a HAFI campaign with and without online pruning.
type CampaignRow struct {
	CPU      string
	Workload string
	Result   *hafi.CampaignResult
}

// Campaign runs a sampled fault-injection campaign on the given CPU and
// workload, with MATE-based online pruning, and (optionally) validates
// every skipped point. The context cancels both the MATE search and the
// campaign gracefully (the row then carries a partial, Interrupted
// result). The campaign runs on the pooled wide engine (256 lanes per
// device, cone-delta evaluation) with one worker per available CPU; the
// result is identical to the single-instance engine's.
func Campaign(ctx context.Context, c *CPUCase, workload string, stride int, params core.SearchParams, validate bool) (*CampaignRow, error) {
	prog := c.FibProg
	if workload == "conv" {
		prog = c.ConvProg
	}
	run := c.NewRun(prog)
	// The golden reference is recorded on a 64-lane wide device (lane 0
	// carries the run): identical Golden, an order of magnitude cheaper
	// than the scalar gate walk.
	grun, err := c.NewRunW(prog, 64)
	if err != nil {
		return nil, err
	}
	gsp := params.Obs.StartSpan("golden")
	golden, err := hafi.RecordGoldenW(grun, 1<<20)
	gsp.End()
	if err != nil {
		return nil, err
	}
	params.Context = ctx
	set := core.Search(c.NL, c.FaultAll, params).Set
	ctl := hafi.NewController(run, golden)
	res, err := ctl.RunCampaignBatchedPoolW(hafi.CampaignConfig{
		Points:          hafi.SampledFaultList(c.NL, golden.HaltCycle, stride),
		MATESet:         set,
		ValidateSkipped: validate,
		Context:         ctx,
		Obs:             params.Obs,
		Workers:         runtime.GOMAXPROCS(0),
	}, func() (hafi.RunW, error) { return c.NewRunW(prog, hafi.DefaultCampaignLanes) })
	if err != nil {
		return nil, err
	}
	return &CampaignRow{CPU: c.Name, Workload: workload, Result: res}, nil
}

// FormatCampaign renders campaign rows.
func FormatCampaign(rows []*CampaignRow) string {
	var sb strings.Builder
	sb.WriteString("HAFI campaign with online MATE pruning\n")
	fmt.Fprintf(&sb, "%-8s%-10s%10s%10s%10s%10s%8s%8s\n",
		"CPU", "workload", "points", "pruned", "executed", "benign", "sdc", "hang")
	for _, r := range rows {
		res := r.Result
		fmt.Fprintf(&sb, "%-8s%-10s%10d%10d%10d%10d%8d%8d\n",
			r.CPU, r.Workload, res.Total, res.Skipped, res.Executed,
			res.ByOutcome[hafi.OutcomeBenign], res.ByOutcome[hafi.OutcomeSDC],
			res.ByOutcome[hafi.OutcomeHang])
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Offline inter-cycle pruning (paper Section 6.3 / introduction).
// ---------------------------------------------------------------------------

// InterCycleRow compares online MATE pruning with the offline inter-cycle
// analysis on the same trace and fault set.
type InterCycleRow struct {
	CPU        string
	FaultSet   string
	MATEs      float64 // fraction pruned by the complete MATE set
	InterCycle float64 // fraction provably benign offline
	OpenEnded  int64
}

// InterCycle computes the comparison for one CPU on its fib trace.
func InterCycle(c *CPUCase, params core.SearchParams) ([]InterCycleRow, error) {
	var rows []InterCycleRow
	for _, fs := range []struct {
		name  string
		wires []netlist.WireID
	}{{"FF", c.FaultAll}, {"FF w/o RF", c.FaultNoRF}} {
		set := core.Search(c.NL, fs.wires, params).Set
		mates := prune.Evaluate(set, c.TraceFib, fs.wires)
		inter, err := intercycle.Analyze(c.NL, c.TraceFib, fs.wires)
		if err != nil {
			return nil, err
		}
		rows = append(rows, InterCycleRow{
			CPU:        c.Name,
			FaultSet:   fs.name,
			MATEs:      mates.Reduction(),
			InterCycle: inter.Reduction(),
			OpenEnded:  inter.OpenEnd,
		})
	}
	return rows, nil
}

// FormatInterCycle renders the comparison.
func FormatInterCycle(rows []InterCycleRow) string {
	var sb strings.Builder
	sb.WriteString("Intra-cycle MATEs (online) vs inter-cycle analysis (offline), fib trace\n")
	fmt.Fprintf(&sb, "%-8s%-12s%14s%16s%12s\n", "CPU", "fault set", "MATEs", "inter-cycle", "open-ended")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s%-12s%13.2f%%%15.2f%%%12d\n",
			r.CPU, r.FaultSet, 100*r.MATEs, 100*r.InterCycle, r.OpenEnded)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Cross-layer comparison (paper Section 1 / 6.3).
// ---------------------------------------------------------------------------

// CrossLayerRow reports the effective-fault fraction at one injection
// level for one CPU/workload.
type CrossLayerRow struct {
	CPU         string
	Level       string // "ISA" or "FF"
	Experiments int
	Effective   float64
}

// CrossLayer runs matched ISA-level and flip-flop-level campaigns on the
// fib workload.
func CrossLayer(c *CPUCase, stride int) ([]CrossLayerRow, error) {
	var rows []CrossLayerRow

	var target isafi.Target
	switch c.Name {
	case "AVR":
		target = isafi.NewAVRTarget(c.FibProg)
	default:
		target = isafi.NewMSP430Target(c.FibProg)
	}
	target.Reset()
	instrs := 0
	for !target.Halted() && instrs < 1<<22 {
		target.Step()
		instrs++
	}
	isaStride := instrs / (len(c.NL.FFs)/target.NumBits()*stride/2 + stride)
	if isaStride < 1 {
		isaStride = 1
	}
	isaRes, err := isafi.Campaign(target, isafi.FullFaultList(target, instrs, isaStride), 1<<22)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CrossLayerRow{
		CPU: c.Name, Level: "ISA", Experiments: isaRes.Total,
		Effective: isaRes.EffectiveFraction(),
	})

	run := c.NewRun(c.FibProg)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		return nil, err
	}
	ctl := hafi.NewController(run, golden)
	run64, err := c.NewRun64(c.FibProg)
	if err != nil {
		return nil, err
	}
	ffRes, err := ctl.RunCampaignBatched(hafi.CampaignConfig{
		Points: hafi.SampledFaultList(c.NL, golden.HaltCycle, stride),
	}, run64)
	if err != nil {
		return nil, err
	}
	eff := float64(ffRes.ByOutcome[hafi.OutcomeSDC]+ffRes.ByOutcome[hafi.OutcomeHang]) / float64(ffRes.Total)
	rows = append(rows, CrossLayerRow{
		CPU: c.Name, Level: "FF", Experiments: ffRes.Total, Effective: eff,
	})
	return rows, nil
}

// FormatCrossLayer renders the comparison.
func FormatCrossLayer(rows []CrossLayerRow) string {
	var sb strings.Builder
	sb.WriteString("Cross-layer effectiveness on fib (share of experiments that are SDC or hang)\n")
	fmt.Fprintf(&sb, "%-8s%-6s%14s%12s\n", "CPU", "level", "experiments", "effective")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s%-6s%14d%11.1f%%\n", r.CPU, r.Level, r.Experiments, 100*r.Effective)
	}
	return sb.String()
}
