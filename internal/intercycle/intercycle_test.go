package intercycle

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/hafi"
	"repro/internal/netlist"
	"repro/internal/progs"
	"repro/internal/sim"
)

// buildHoldReg: a register with a write-enable whose Q feeds only its own
// hold mux — the canonical inter-cycle case: a fault injected while the
// register holds is benign iff the register is overwritten later.
func buildHoldReg(t testing.TB) (*netlist.Netlist, netlist.WireID, netlist.WireID, netlist.WireID) {
	t.Helper()
	b := netlist.NewBuilder("holdreg")
	d := b.Input("d")
	en := b.Input("en")
	q := b.FFPlaceholder("q", false, "data")
	b.SetFFD(q, b.Gate(cell.MUX2, q, d, en))
	b.MarkOutput(b.Gate(cell.BUF, d))
	return b.MustNetlist(), q, d, en
}

func TestHoldRegisterLifetimes(t *testing.T) {
	nl, q, d, en := buildHoldReg(t)
	m := sim.New(nl)
	// en pulses at cycles 4 and 9; d toggles.
	cnt := 0
	env := sim.EnvFunc(func(m *sim.Machine) {
		m.SetValue(en, cnt == 4 || cnt == 9)
		m.SetValue(d, cnt%2 == 0)
		cnt++
	})
	tr := sim.Record(m, env, 12)

	res, err := Analyze(nl, tr, []netlist.WireID{q})
	if err != nil {
		t.Fatal(err)
	}
	v := res.PerWire[0]
	// Cycles 0..4: fault held until the write at cycle 4 kills it → benign.
	for cyc := 0; cyc <= 4; cyc++ {
		if v[cyc] != VerdictBenign {
			t.Errorf("cycle %d: %v, want benign (killed by write at 4)", cyc, v[cyc])
		}
	}
	// Cycles 5..9 likewise killed by the write at 9.
	for cyc := 5; cyc <= 9; cyc++ {
		if v[cyc] != VerdictBenign {
			t.Errorf("cycle %d: %v, want benign (killed by write at 9)", cyc, v[cyc])
		}
	}
	// Cycles 10, 11: no further write inside the trace → open-ended.
	for cyc := 10; cyc < 12; cyc++ {
		if v[cyc] != VerdictOpenEnd {
			t.Errorf("cycle %d: %v, want open-end", cyc, v[cyc])
		}
	}
	if res.Benign != 10 || res.OpenEnd != 2 {
		t.Errorf("counts: %+v", res)
	}
}

func TestVisibleRegisterEscapes(t *testing.T) {
	// Q drives a primary output: every injection escapes immediately.
	b := netlist.NewBuilder("vis")
	dIn := b.Input("d")
	q := b.FF("q", dIn, false, "")
	b.MarkOutput(b.Gate(cell.BUF, q))
	nl := b.MustNetlist()
	m := sim.New(nl)
	tr := sim.Record(m, sim.NopEnv, 8)
	res, err := Analyze(nl, tr, []netlist.WireID{q})
	if err != nil {
		t.Fatal(err)
	}
	for cyc, v := range res.PerWire[0] {
		if v != VerdictUnknown {
			t.Errorf("cycle %d: %v, want unknown (visible)", cyc, v)
		}
	}
	if res.Reduction() != 0 {
		t.Error("nothing is provably benign")
	}
}

func TestAnalyzeRejectsNonFF(t *testing.T) {
	nl, _, d, _ := buildHoldReg(t)
	m := sim.New(nl)
	tr := sim.Record(m, sim.NopEnv, 4)
	if _, err := Analyze(nl, tr, []netlist.WireID{d}); err == nil {
		t.Fatal("expected error for non-FF wire")
	}
}

// TestBenignVerdictsMatchCampaign is the ground-truth validation: every
// point the offline analysis declares benign must come out benign in an
// actual injection campaign run to completion.
func TestBenignVerdictsMatchCampaign(t *testing.T) {
	c := avr.NewCore()
	prog := avr.MustAssemble(`
	    ldi r1, 6
	    ldi r2, 0
	loop:
	    add r2, r1
	    dec r1
	    brne loop
	    ldi r3, 16
	    st (r3), r2
	    out r2
	    halt
	`)
	run := hafi.NewAVRRun(c, prog)
	golden, err := hafi.RecordGolden(run, 10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(c.NL, golden.Trace, c.NL.FFQWires())
	if err != nil {
		t.Fatal(err)
	}
	if res.Benign == 0 {
		t.Fatal("expected some benign points on the real core")
	}

	// Ground truth: run every benign-declared point through the campaign.
	var points []hafi.FaultPoint
	for wi, verdicts := range res.PerWire {
		q := c.NL.FFQWires()[wi]
		ff := c.NL.FFByQ(q)
		for cyc, v := range verdicts {
			if v == VerdictBenign {
				points = append(points, hafi.FaultPoint{FF: ff, Cycle: cyc})
			}
		}
	}
	ctl := hafi.NewController(run, golden)
	camp, err := ctl.RunCampaign(hafi.CampaignConfig{Points: points})
	if err != nil {
		t.Fatal(err)
	}
	if camp.ByOutcome[hafi.OutcomeSDC] != 0 || camp.ByOutcome[hafi.OutcomeHang] != 0 {
		t.Fatalf("offline-benign points were effective: %v", camp.ByOutcome)
	}
	t.Logf("validated %d offline-benign points against full injection: all benign", camp.Total)
}

// TestSupersetOfIntraCycleMasking: any point the exact intra-cycle oracle
// masks is also benign for the inter-cycle analysis (killed immediately).
func TestSupersetOfIntraCycleMasking(t *testing.T) {
	c := avr.NewCore()
	sys := avr.NewSystem(c, progs.AVRFib())
	tr := sys.Record(600)
	wires := c.NL.FFQWires()
	res, err := Analyze(c.NL, tr, wires)
	if err != nil {
		t.Fatal(err)
	}
	oracle := core.NewOracle(c.NL)
	checked := 0
	for wi, q := range wires {
		if wi%7 != 0 {
			continue // sample
		}
		cone := core.ComputeCone(c.NL, q)
		for cyc := 0; cyc < tr.NumCycles(); cyc += 13 {
			if oracle.MaskedExactTrace(cone, tr, cyc) {
				checked++
				if res.PerWire[wi][cyc] != VerdictBenign {
					t.Fatalf("wire %s cycle %d: oracle-masked but inter-cycle %v",
						c.NL.WireName(q), cyc, res.PerWire[wi][cyc])
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no oracle-masked sample points found")
	}
	t.Logf("checked %d oracle-masked points: all inter-cycle benign", checked)
}

// TestInterCycleBeatsIntraCycleOnRegisterFile quantifies the paper's §6.3
// prediction: the register file, nearly untouched by intra-cycle MATEs, is
// pruned heavily by the inter-cycle analysis.
func TestInterCycleBeatsIntraCycleOnRegisterFile(t *testing.T) {
	c := avr.NewCore()
	sys := avr.NewSystem(c, progs.AVRFib())
	tr := sys.Record(2000)
	rf := []netlist.WireID{}
	for _, ff := range c.NL.FFs {
		if ff.Group == avr.GroupRegFile {
			rf = append(rf, ff.Q)
		}
	}
	res, err := Analyze(c.NL, tr, rf)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-cycle MATEs prune only a few percent of register-file points
	// (a register must be overwritten in the very cycle of the upset); the
	// inter-cycle analysis also prunes the whole hold window back to the
	// previous read, so it must do clearly better.
	if res.Reduction() < 0.05 {
		t.Errorf("register-file inter-cycle reduction %.2f%% — expected > 5%%", 100*res.Reduction())
	}
	// Registers the workload never writes stay confined to the trace end.
	if res.OpenEnd == 0 {
		t.Error("expected open-ended points (registers fib never writes)")
	}
	t.Logf("register file: %s", res)
}
