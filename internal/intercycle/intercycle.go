// Package intercycle implements offline inter-cycle fault-space pruning on
// recorded execution traces — the complement of the paper's intra-cycle
// MATEs. Section 6.3 observes that "faults in flipflops not overwritten in
// the next cycle could never be masked [by MATEs]" and that register-level
// faults "are more likely to be pruned on an inter-cycle pruning strategy";
// the introduction notes that fault-space pruning "is often performed
// offline on a recorded execution trace". This package is that offline
// analysis, made exact at gate level:
//
// A fault (ff, t) is *contained* in cycle u when, starting from the golden
// state of cycle u with only ff flipped, re-evaluating ff's fault cone
// shows that (a) every cone sink except ff's own D input carries its
// golden value, and (b) ff's own D either equals its golden value (the
// fault is overwritten — killed) or equals the flipped Q (the fault is
// exactly held). By induction over cycles, a fault injected at t is
// provably benign iff containment holds from t until a killing cycle is
// reached before the end of the trace.
//
// Compared to MATEs this is strictly more powerful (a MATE trigger is the
// special case "killed in the first cycle" or "cone masked entirely"), but
// it needs the whole recorded trace and per-fault cone simulation, so it
// runs offline in the campaign planner, while MATEs evaluate in a handful
// of LUTs online. The two compose: run intercycle offline where a trace
// exists, keep MATEs in the FPGA for everything else.
package intercycle

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Verdict classifies one (flip-flop, cycle) injection point.
type Verdict uint8

const (
	// VerdictUnknown: the fault escaped its flip-flop within the analysed
	// window — it may be effective (inject it).
	VerdictUnknown Verdict = iota
	// VerdictBenign: the fault stayed confined to its flip-flop and was
	// overwritten with the golden value before the trace ended.
	VerdictBenign
	// VerdictOpenEnd: the fault stayed confined until the end of the
	// trace without being overwritten; it never became architecturally
	// visible inside the trace, but its fate past the trace is unknown.
	VerdictOpenEnd
)

func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictOpenEnd:
		return "open-end"
	default:
		return "unknown"
	}
}

// Result summarises an inter-cycle analysis for one fault set.
type Result struct {
	FaultWires  int
	Cycles      int
	TotalPoints int64
	// Benign counts points with VerdictBenign; OpenEnd those confined to
	// the trace end. Reduction() uses Benign only (the sound choice).
	Benign  int64
	OpenEnd int64
	// PerWire[i] is the verdict per cycle for fault wire i.
	PerWire [][]Verdict
}

// Reduction returns the provably-benign share of the fault space.
func (r *Result) Reduction() float64 {
	if r.TotalPoints == 0 {
		return 0
	}
	return float64(r.Benign) / float64(r.TotalPoints)
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("inter-cycle: %d/%d points benign (%.2f%%), %d open-ended",
		r.Benign, r.TotalPoints, 100*r.Reduction(), r.OpenEnd)
}

// containment is the per-cycle fate of a held fault.
type containment uint8

const (
	containEscapes containment = iota // some sink beyond the own D changed
	containHolds                      // confined: own D re-captures the flip
	containKilled                     // own D carries the golden value
)

// Analyze runs the exact inter-cycle analysis for every fault wire over
// the whole trace. Fault wires must be flip-flop outputs of nl. The work
// parallelises over fault wires.
func Analyze(nl *netlist.Netlist, tr *sim.Trace, faultWires []netlist.WireID) (*Result, error) {
	res := &Result{
		FaultWires:  len(faultWires),
		Cycles:      tr.NumCycles(),
		TotalPoints: int64(len(faultWires)) * int64(tr.NumCycles()),
		PerWire:     make([][]Verdict, len(faultWires)),
	}
	for _, w := range faultWires {
		if nl.FFByQ(w) < 0 {
			return nil, fmt.Errorf("intercycle: wire %s is not a flip-flop output", nl.WireName(w))
		}
	}

	workers := runtime.NumCPU()
	if workers > len(faultWires) {
		workers = len(faultWires)
	}
	if workers < 1 {
		workers = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := 0
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]bool, nl.NumWires())
			values := make([]bool, nl.NumWires())
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(faultWires) {
					return
				}
				verdicts, benign, open := analyzeWire(nl, tr, faultWires[i], scratch, values)
				mu.Lock()
				res.PerWire[i] = verdicts
				res.Benign += benign
				res.OpenEnd += open
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return res, nil
}

// analyzeWire computes the per-cycle containment chain for one flip-flop
// and folds it into verdicts: scanning backwards, a killed cycle makes
// every preceding hold-chain benign.
func analyzeWire(nl *netlist.Netlist, tr *sim.Trace, q netlist.WireID, scratch, values []bool) (verdicts []Verdict, benign, open int64) {
	cone := core.ComputeCone(nl, q)
	ffIdx := nl.FFByQ(q)
	ownD := nl.FFs[ffIdx].D

	cycles := tr.NumCycles()
	chain := make([]containment, cycles)
	for cyc := 0; cyc < cycles; cyc++ {
		chain[cyc] = containAt(nl, cone, tr, cyc, q, ownD, scratch, values)
	}

	// Fold backwards: state(cyc) = verdict of a fault *held* at cyc.
	verdicts = make([]Verdict, cycles)
	state := VerdictOpenEnd
	for cyc := cycles - 1; cyc >= 0; cyc-- {
		switch chain[cyc] {
		case containEscapes:
			state = VerdictUnknown
		case containKilled:
			state = VerdictBenign
		case containHolds:
			// inherits the fate of the next cycle (state unchanged)
		}
		verdicts[cyc] = state
		switch state {
		case VerdictBenign:
			benign++
		case VerdictOpenEnd:
			open++
		}
	}
	return verdicts, benign, open
}

// containAt evaluates one cycle of containment: flip q in the golden state
// of cycle cyc, re-evaluate the cone, compare sinks.
func containAt(nl *netlist.Netlist, cone *core.Cone, tr *sim.Trace, cyc int, q, ownD netlist.WireID, scratch, values []bool) containment {
	row := tr.Row(cyc)
	for i := range values {
		values[i] = row[i/64]>>(uint(i)%64)&1 == 1
	}
	copy(scratch, values)
	scratch[q] = !values[q]

	gates := nl.Gates
	for _, gi := range cone.Gates {
		g := &gates[gi]
		var in uint32
		for p, w := range g.Inputs {
			if scratch[w] {
				in |= 1 << uint(p)
			}
		}
		scratch[g.Output] = g.Cell.Eval(in)
	}
	for _, s := range cone.Sinks {
		if s == ownD {
			continue
		}
		if scratch[s] != values[s] {
			return containEscapes
		}
	}
	// The flipped FF's own next state: note that the same D wire may also
	// feed other flip-flops; those are covered because a shared D wire
	// with a changed value would differ from golden — checked below.
	if len(nl.FFsOfD(ownD)) > 1 && scratch[ownD] != values[ownD] {
		return containEscapes
	}
	if scratch[ownD] == values[ownD] {
		// The flip-flop recaptures its golden next state: fault killed.
		return containKilled
	}
	// Otherwise the captured next state is the complement of the golden
	// one — at cyc+1 the machine is exactly "golden with this flip-flop
	// flipped" again, which is the induction premise for the next cycle.
	return containHolds
}
