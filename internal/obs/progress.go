package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// ProgressConfig wires a periodic progress reporter to registry metrics.
// Done and Total are required; everything else is optional. The reporter
// reads the handles directly (they are nil-safe), so it works regardless
// of which pipeline stage updates them.
type ProgressConfig struct {
	// Label prefixes every line (e.g. "campaign", "search", "replay").
	Label string
	// Unit names the counted items (e.g. "points", "wires", "cycles").
	Unit string
	// Out receives one status line per tick (default: io.Discard).
	Out io.Writer
	// Interval between lines (default 1s).
	Interval time.Duration
	// Done counts completed items.
	Done *Counter
	// DoneGauge is an alternative done source for reporters whose count
	// can be reconciled downward (the fleet coordinator resets a
	// re-leased shard's progress). Used when Done is nil.
	DoneGauge *Gauge
	// Total holds the number of items to process (0 = unknown, no ETA).
	Total *Gauge
	// Masked, when set, adds a masked-rate column (Masked/Done).
	Masked *Counter
	// Converged, when set, adds a convergence-share column (Converged/Done):
	// the fraction of classified points retired early because their state
	// re-converged with the golden reference.
	Converged *Counter
	// WorkersBusy/Workers, when set, add a worker-utilization column.
	WorkersBusy *Gauge
	Workers     *Gauge
	// Lanes, when set and nonzero, adds the device lane width — the wide
	// engine publishes it once at campaign start; 64-lane runs and older
	// binaries leave the gauge unset and the column absent.
	Lanes *Gauge
}

// StartProgress launches the stderr ticker and returns its stop function.
// Stopping prints one final line so short runs still leave a trace.
func StartProgress(cfg ProgressConfig) (stop func()) {
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Label == "" {
		cfg.Label = "progress"
	}
	if cfg.Unit == "" {
		cfg.Unit = "items"
	}
	done := make(chan struct{})
	var once sync.Once
	start := time.Now()
	var prevDone int64
	prevT := start

	// line is called from the ticker goroutine and, for the final line,
	// from whichever goroutine invokes stop; mu covers the rate state.
	var mu sync.Mutex
	line := func(now time.Time) {
		mu.Lock()
		defer mu.Unlock()
		d := cfg.Done.Value()
		if cfg.Done == nil {
			d = cfg.DoneGauge.Value()
		}
		t := cfg.Total.Value()
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s: %d", cfg.Label, d)
		if t > 0 {
			fmt.Fprintf(&sb, "/%d %s (%.1f%%)", t, cfg.Unit, 100*float64(d)/float64(t))
		} else {
			fmt.Fprintf(&sb, " %s", cfg.Unit)
		}
		// Rate over the last tick; fall back to the lifetime average when
		// the tick saw nothing (e.g. the first line of a fast run).
		dt := now.Sub(prevT).Seconds()
		rate := 0.0
		if dt > 0 {
			rate = float64(d-prevDone) / dt
		}
		if rate == 0 && now.Sub(start).Seconds() > 0 {
			rate = float64(d) / now.Sub(start).Seconds()
		}
		if rate < 0 {
			// A gauge-backed done count reconciled downward (re-leased
			// shard): report a stalled tick, never a negative rate.
			rate = 0
		}
		fmt.Fprintf(&sb, " | %.0f %s/s", rate, cfg.Unit)
		if cfg.Masked != nil && d > 0 {
			fmt.Fprintf(&sb, " | masked %.1f%%", 100*float64(cfg.Masked.Value())/float64(d))
		}
		if cfg.Converged != nil && d > 0 {
			fmt.Fprintf(&sb, " | conv %.1f%%", 100*float64(cfg.Converged.Value())/float64(d))
		}
		if cfg.Workers != nil && cfg.Workers.Value() > 0 {
			fmt.Fprintf(&sb, " | workers %d/%d", cfg.WorkersBusy.Value(), cfg.Workers.Value())
		}
		if cfg.Lanes != nil && cfg.Lanes.Value() > 0 {
			fmt.Fprintf(&sb, " | lanes %d", cfg.Lanes.Value())
		}
		// The ETA column is always present so lines stay aligned tick to
		// tick; "--:--" covers an unknown total, a rate of zero (first tick
		// of a slow run) and a finished count, and an implausible projection
		// (> 1000h, i.e. a rate so small the division degenerates) never
		// leaks out as a garbage duration.
		etaStr := "--:--"
		if t > 0 && rate > 0 && d < t {
			if secs := float64(t-d) / rate; secs < 3600*1000 {
				etaStr = time.Duration(secs * float64(time.Second)).Round(time.Second).String()
			}
		}
		fmt.Fprintf(&sb, " | eta %s", etaStr)
		fmt.Fprintln(cfg.Out, sb.String())
		prevDone, prevT = d, now
	}

	go func() {
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				line(now)
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			line(time.Now())
		})
	}
}
