package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", LinearBuckets(1, 1, 4))
	s := r.StartSpan("s")
	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(-2)
	h.Observe(3)
	s.Start("child").End()
	s.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must stay zero")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry prometheus export: %q, %v", buf.String(), err)
	}
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil || strings.TrimSpace(buf.String()) != "{}" {
		t.Fatalf("nil registry JSON export: %q, %v", buf.String(), err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("injections_total")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("injections_total") != c {
		t.Fatal("same name must return the same counter")
	}
	lc := r.Counter("outcomes_total", "outcome", "sdc")
	lc.Inc()
	if r.Counter("outcomes_total", "outcome", "benign") == lc {
		t.Fatal("different labels must be different counters")
	}

	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-3)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	h := r.Histogram("lanes", []float64{1, 8, 64})
	for _, v := range []float64{1, 2, 64, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 167 {
		t.Fatalf("hist sum = %g, want 167", h.Sum())
	}
	_, counts := h.Buckets()
	want := []int64{1, 1, 1, 1} // le1, le8, le64, +Inf
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, counts[i], w, counts)
		}
	}
}

func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h", ExpBuckets(1, 2, 8))
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 7))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestSpanHierarchy(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("campaign")
	child := parent.Start("golden")
	time.Sleep(2 * time.Millisecond)
	if child.End() <= 0 {
		t.Fatal("child span must measure time")
	}
	parent.End()

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`span_seconds_total{span="campaign"}`,
		`span_seconds_total{span="campaign/golden"}`,
		`span_runs_total{span="campaign/golden"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Counter("outcomes_total", "outcome", "sdc").Add(2)
	r.Gauge("points").Set(42)
	h := r.Histogram("lanes", []float64{1, 2})
	h.Observe(1)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 3\n",
		`outcomes_total{outcome="sdc"} 2`,
		"# TYPE points gauge\npoints 42\n",
		`lanes_bucket{le="1"} 1`,
		`lanes_bucket{le="2"} 1`, // cumulative: nothing in (1,2]
		`lanes_bucket{le="+Inf"} 2`,
		"lanes_sum 6",
		"lanes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(5)
	r.Gauge("g", "cpu", "avr").Set(1)
	r.Histogram("h", []float64{10}).Observe(3)
	sp := r.StartSpan("search")
	sp.End()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64 `json:"count"`
		} `json:"histograms"`
		Spans map[string]struct {
			Runs int64 `json:"runs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Counters["n"] != 5 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["g{cpu=avr}"] != 1 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	if doc.Histograms["h"].Count != 1 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}
	if doc.Spans["search"].Runs != 1 {
		t.Fatalf("spans = %v", doc.Spans)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_injections_total").Add(7)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "campaign_injections_total 7") {
		t.Fatalf("metrics endpoint output:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Fatal("pprof cmdline endpoint returned nothing")
	}
}

func TestProgressReporter(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("done")
	total := r.Gauge("total")
	masked := r.Counter("masked")
	lanes := r.Gauge("lanes")
	total.Set(100)
	done.Add(40)
	masked.Add(10)
	lanes.Set(256)

	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(ProgressConfig{
		Label: "campaign", Unit: "points", Out: w,
		Interval: 10 * time.Millisecond,
		Done:     done, Total: total, Masked: masked, Lanes: lanes,
	})
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "campaign: 40/100 points (40.0%)") {
		t.Fatalf("progress output missing status: %q", out)
	}
	if !strings.Contains(out, "masked 25.0%") {
		t.Fatalf("progress output missing masked rate: %q", out)
	}
	if !strings.Contains(out, "lanes 256") {
		t.Fatalf("progress output missing lane width: %q", out)
	}
}

// TestProgressLanesColumnAbsent: an unset lanes gauge (64-lane journals,
// older binaries) must leave the column out rather than print "lanes 0".
func TestProgressLanesColumnAbsent(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("done")
	total := r.Gauge("total")
	total.Set(10)
	done.Add(5)
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(ProgressConfig{
		Label: "campaign", Unit: "points", Out: w,
		Interval: 10 * time.Millisecond,
		Done:     done, Total: total, Lanes: r.Gauge("lanes"),
	})
	time.Sleep(15 * time.Millisecond)
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if strings.Contains(out, "lanes") {
		t.Fatalf("lanes column rendered with unset gauge: %q", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestCLIOptionsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Enabled() {
		t.Fatal("no flags set must mean disabled")
	}
	reg, cleanup, err := o.Init(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Fatal("disabled Init must return a nil registry")
	}
	cleanup()
}

func TestCLIOptionsStatsJSON(t *testing.T) {
	path := t.TempDir() + "/stats.json"
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{"-stats-json", path}); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	reg, cleanup, err := o.Init(&errw)
	if err != nil {
		t.Fatal(err)
	}
	if reg == nil {
		t.Fatal("stats-json must enable the registry")
	}
	reg.Counter("x_total").Add(3)
	cleanup()
	cleanup() // idempotent

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x_total": 3`) {
		t.Fatalf("stats file: %s", data)
	}
}
