package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the embedded observability endpoint: it serves the registry in
// Prometheus text format on /metrics and the standard net/http/pprof
// profiling handlers under /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. "127.0.0.1:9137";
// port 0 picks a free port — read the result from Addr). The server runs
// on its own goroutine until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// MetricsHandler returns the Prometheus text-format handler for reg, for
// mounting on an external mux (the fleet coordinator serves its lease API
// and /metrics on one listener this way). Nil-safe: a nil registry exports
// the empty metric set.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint. Safe on a nil receiver.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
