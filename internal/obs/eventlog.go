package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level grades event-log entries. The event log is for operational events
// (lease granted, shard merged, anomaly raised), not per-point metrics —
// metrics stay in the registry.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel maps a -log-level string onto a Level.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// eventLine is the wire shape of one event-log entry: a single JSON object
// per line, so the log is greppable (`grep '"event":"anomaly.straggler"'`)
// and machine-readable (jq, Loki, …) at the same time.
type eventLine struct {
	TS        string          `json:"ts"`
	Level     string          `json:"level"`
	Component string          `json:"component,omitempty"`
	Event     string          `json:"event"`
	Msg       string          `json:"msg,omitempty"`
	Fields    json.RawMessage `json:"fields,omitempty"`
}

// EventLog is a leveled, structured JSONL event log: every entry is one
// complete JSON object on one line. It replaces ad-hoc stderr prints on
// the fleet coordinator and worker so a campaign's operational history is
// machine-parseable. All methods are safe for concurrent use and safe on
// a nil receiver (the disabled state, like every obs handle).
type EventLog struct {
	mu        sync.Mutex
	w         io.Writer
	min       Level
	component string
	now       func() time.Time // injectable for tests
}

// NewEventLog writes events at or above min to w, stamping each line with
// component (e.g. "campaignd", "campaignworker").
func NewEventLog(w io.Writer, component string, min Level) *EventLog {
	return &EventLog{w: w, min: min, component: component, now: time.Now}
}

// Eventf appends one event line. event is the stable machine key, dotted
// by convention ("lease.grant", "anomaly.straggler"); the formatted
// message is the human half. Entries below the log's minimum level are
// dropped without formatting. Safe on a nil receiver.
func (l *EventLog) Eventf(level Level, event, format string, args ...interface{}) {
	l.emit(level, event, format, args, nil)
}

// Event appends one event line with structured fields (an even-length
// key/value list; values are JSON-encoded). Safe on a nil receiver.
func (l *EventLog) Event(level Level, event, msg string, fields ...interface{}) {
	l.emit(level, event, "%s", []interface{}{msg}, fields)
}

func (l *EventLog) emit(level Level, event, format string, args []interface{}, fields []interface{}) {
	if l == nil || level < l.min {
		return
	}
	line := eventLine{
		Level:     level.String(),
		Component: l.component,
		Event:     event,
		Msg:       fmt.Sprintf(format, args...),
	}
	if len(fields) > 1 {
		m := make(map[string]interface{}, len(fields)/2)
		for i := 0; i+1 < len(fields); i += 2 {
			k, ok := fields[i].(string)
			if !ok {
				k = fmt.Sprint(fields[i])
			}
			m[k] = fields[i+1]
		}
		if raw, err := json.Marshal(m); err == nil {
			line.Fields = raw
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	line.TS = l.now().UTC().Format(time.RFC3339Nano)
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	data = append(data, '\n')
	_, _ = l.w.Write(data)
}

// Logf adapts the event log to the fleet's Logf plumbing: the returned
// function records every formatted line as a debug-level "log" event.
// Returns nil (the disabled Logf) on a nil receiver.
func (l *EventLog) Logf(level Level) func(format string, args ...interface{}) {
	if l == nil {
		return nil
	}
	return func(format string, args ...interface{}) {
		l.Eventf(level, "log", format, args...)
	}
}
