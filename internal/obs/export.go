package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// snapshot is a point-in-time copy of a registry, used by both exporters so
// they agree on ordering and never hold the registry lock while writing.
type snapshot struct {
	counters   []kv
	gauges     []kv
	histograms []histEntry
	spans      []spanEntry
	uptime     float64
}

type kv struct {
	id metricID
	v  int64
}

type histEntry struct {
	id            metricID
	bounds        []float64
	counts        []int64
	count         int64
	sum           float64
	p50, p95, p99 float64
}

type spanEntry struct {
	path    string
	count   int64
	seconds float64
}

func (r *Registry) snap() *snapshot {
	s := &snapshot{}
	r.mu.Lock()
	for id, c := range r.counters {
		s.counters = append(s.counters, kv{id, c.Value()})
	}
	for id, g := range r.gauges {
		s.gauges = append(s.gauges, kv{id, g.Value()})
	}
	for id, h := range r.histograms {
		bounds, counts := h.Buckets()
		p50, p95, p99 := h.BucketQuantiles()
		s.histograms = append(s.histograms, histEntry{id, bounds, counts, h.Count(), h.Sum(), p50, p95, p99})
	}
	for path, st := range r.spans {
		s.spans = append(s.spans, spanEntry{path, st.count.Load(), float64(st.nanos.Load()) / 1e9})
	}
	s.uptime = timeSince(r.start)
	r.mu.Unlock()

	sort.Slice(s.counters, func(i, j int) bool { return lessID(s.counters[i].id, s.counters[j].id) })
	sort.Slice(s.gauges, func(i, j int) bool { return lessID(s.gauges[i].id, s.gauges[j].id) })
	sort.Slice(s.histograms, func(i, j int) bool { return lessID(s.histograms[i].id, s.histograms[j].id) })
	sort.Slice(s.spans, func(i, j int) bool { return s.spans[i].path < s.spans[j].path })
	return s
}

func lessID(a, b metricID) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	return a.labels < b.labels
}

// promLabels renders "k1=v1,k2=v2" as `{k1="v1",k2="v2"}`.
func promLabels(labels string, extra ...string) string {
	var parts []string
	if labels != "" {
		for _, p := range strings.Split(labels, ",") {
			k, v, _ := strings.Cut(p, "=")
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus emits every metric of the registry in the Prometheus
// text exposition format. A nil registry writes nothing.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	s := r.snap()
	var b strings.Builder

	typed := map[string]bool{}
	typeLine := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}

	fmt.Fprintf(&b, "# TYPE process_uptime_seconds gauge\nprocess_uptime_seconds %g\n", s.uptime)
	for _, c := range s.counters {
		typeLine(c.id.name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", c.id.name, promLabels(c.id.labels), c.v)
	}
	for _, g := range s.gauges {
		typeLine(g.id.name, "gauge")
		fmt.Fprintf(&b, "%s%s %d\n", g.id.name, promLabels(g.id.labels), g.v)
	}
	for _, h := range s.histograms {
		typeLine(h.id.name, "histogram")
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.id.name, promLabels(h.id.labels, "le", trimFloat(bound)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.id.name, promLabels(h.id.labels, "le", "+Inf"), h.count)
		fmt.Fprintf(&b, "%s_sum%s %g\n", h.id.name, promLabels(h.id.labels), h.sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", h.id.name, promLabels(h.id.labels), h.count)
	}
	// Bucket-interpolated quantile estimates as a companion gauge, so a
	// dashboard without recording rules still gets p50/p95/p99 lines.
	for _, h := range s.histograms {
		if h.count == 0 {
			continue
		}
		typeLine(h.id.name+"_quantile", "gauge")
		for _, q := range [...]struct {
			label string
			v     float64
		}{{"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}} {
			fmt.Fprintf(&b, "%s_quantile%s %g\n", h.id.name, promLabels(h.id.labels, "quantile", q.label), q.v)
		}
	}
	for _, sp := range s.spans {
		typeLine("span_seconds_total", "counter")
		fmt.Fprintf(&b, "span_seconds_total%s %g\n", promLabels("", "span", sp.path), sp.seconds)
	}
	for _, sp := range s.spans {
		typeLine("span_runs_total", "counter")
		fmt.Fprintf(&b, "span_runs_total%s %d\n", promLabels("", "span", sp.path), sp.count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", f), "0"), ".")
}

// jsonHistogram is the JSON shape of one histogram. P50/P95/P99 are the
// bucket-interpolated quantile estimates (Histogram.Quantile), zero when
// the histogram is empty.
type jsonHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// jsonSpan is the JSON shape of one span path.
type jsonSpan struct {
	Runs    int64   `json:"runs"`
	Seconds float64 `json:"seconds"`
}

// jsonStats is the -stats-json document.
type jsonStats struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Counters      map[string]int64         `json:"counters"`
	Gauges        map[string]int64         `json:"gauges"`
	Histograms    map[string]jsonHistogram `json:"histograms"`
	Spans         map[string]jsonSpan      `json:"spans"`
}

// WriteJSON emits every metric of the registry as one JSON document
// (the -stats-json end-of-run dump). A nil registry writes "{}".
func WriteJSON(w io.Writer, r *Registry) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	s := r.snap()
	doc := jsonStats{
		UptimeSeconds: s.uptime,
		Counters:      map[string]int64{},
		Gauges:        map[string]int64{},
		Histograms:    map[string]jsonHistogram{},
		Spans:         map[string]jsonSpan{},
	}
	for _, c := range s.counters {
		doc.Counters[c.id.String()] = c.v
	}
	for _, g := range s.gauges {
		doc.Gauges[g.id.String()] = g.v
	}
	for _, h := range s.histograms {
		doc.Histograms[h.id.String()] = jsonHistogram{
			Bounds: h.bounds, Counts: h.counts, Count: h.count, Sum: h.sum,
			P50: h.p50, P95: h.p95, P99: h.p99,
		}
	}
	for _, sp := range s.spans {
		doc.Spans[sp.path] = jsonSpan{Runs: sp.count, Seconds: sp.seconds}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
