package tracefile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// traceDoc mirrors the on-disk document shape for round-trip validation.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TS   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		PID  int    `json:"pid"`
		TID  int    `json:"tid"`
		S    string `json:"s"`
		Args struct {
			Detail string `json:"detail"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func readDoc(t *testing.T, path string) traceDoc {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, data)
	}
	return doc
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	l0 := w.BeginLane()
	l1 := w.BeginLane()
	if l0 == l1 {
		t.Fatalf("concurrent spans share lane %d", l0)
	}
	w.Complete("search/wire", `wire 7: cone 3 gates, "quoted"`, start, 5*time.Millisecond, l1)
	w.EndLane(l1)
	w.Complete("campaign", "", start, 20*time.Millisecond, l0)
	w.EndLane(l0)
	w.Instant("checkpoint", "cycle 42", start.Add(time.Millisecond))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	written, dropped := w.Events()
	if written != 3 || dropped != 0 {
		t.Fatalf("events = %d written, %d dropped", written, dropped)
	}

	doc := readDoc(t, path)
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	wire := doc.TraceEvents[byName["search/wire"]]
	if wire.Ph != "X" || wire.Dur != 5000 || wire.TID != int(l1) {
		t.Fatalf("wire event = %+v", wire)
	}
	if wire.Args.Detail != `wire 7: cone 3 gates, "quoted"` {
		t.Fatalf("detail = %q", wire.Args.Detail)
	}
	inst := doc.TraceEvents[byName["checkpoint"]]
	if inst.Ph != "i" || inst.S != "g" {
		t.Fatalf("instant event = %+v", inst)
	}
}

// TestLaneReuse verifies the lowest-free-lane discipline: a released lane is
// handed out again before a fresh one is grown.
func TestLaneReuse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	a, b, c := w.BeginLane(), w.BeginLane(), w.BeginLane()
	if a == b || b == c || a == c {
		t.Fatalf("lanes not distinct: %d %d %d", a, b, c)
	}
	w.EndLane(b)
	if got := w.BeginLane(); got != b {
		t.Fatalf("reallocated lane = %d, want released %d", got, b)
	}
	w.EndLane(a)
	w.EndLane(c)
	if got := w.BeginLane(); got != a {
		t.Fatalf("lowest free lane = %d, want %d", got, a)
	}
}

// TestBufferedFlush writes past the buffer bound and checks nothing is lost
// and the document stays valid.
func TestBufferedFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.max = 16 // shrink the buffer so the test exercises mid-stream flushes
	start := time.Now()
	const n = 100
	for i := 0; i < n; i++ {
		w.Complete("span", "", start, time.Microsecond, 0)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if written, dropped := w.Events(); written != n || dropped != 0 {
		t.Fatalf("events = %d written, %d dropped", written, dropped)
	}
	if got := len(readDoc(t, path).TraceEvents); got != n {
		t.Fatalf("decoded %d of %d events", got, n)
	}
}

func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lane := w.BeginLane()
				w.Complete("worker", "", start, time.Microsecond, lane)
				w.EndLane(lane)
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(readDoc(t, path).TraceEvents); got != 8*200 {
		t.Fatalf("decoded %d events, want %d", got, 8*200)
	}
}

// TestCloseIdempotentAndLateEvents: events after Close are dropped, counted,
// and never corrupt the finished document.
func TestCloseIdempotentAndLateEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w.Complete("early", "", time.Now(), time.Microsecond, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Complete("late", "", time.Now(), time.Microsecond, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	written, dropped := w.Events()
	if written != 1 || dropped != 1 {
		t.Fatalf("events = %d written, %d dropped", written, dropped)
	}
	if got := len(readDoc(t, path).TraceEvents); got != 1 {
		t.Fatalf("decoded %d events", got)
	}
}

func TestNilWriterSafe(t *testing.T) {
	var w *Writer
	if lane := w.BeginLane(); lane != 0 {
		t.Fatalf("nil BeginLane = %d", lane)
	}
	w.EndLane(0)
	w.Complete("x", "", time.Now(), 0, 0)
	w.Instant("x", "", time.Now())
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if a, b := w.Events(); a != 0 || b != 0 {
		t.Fatalf("nil Events = %d, %d", a, b)
	}
}
