// Package tracefile writes execution timelines in the Chrome trace-event
// JSON format (the "trace_event" format consumed by Perfetto, chrome://
// tracing and speedscope). The pruning pipeline's timed spans — cone
// analysis per wire, MATE search per flip-flop, campaign batches, journal
// appends — become complete events ("ph":"X") on a set of virtual lanes,
// so a `-trace campaign.json` file drops straight into ui.perfetto.dev and
// shows where campaign wall-clock actually goes.
//
// The writer is deliberately decoupled from package obs (obs imports
// tracefile, never the reverse): it only deals in names, wall-clock
// timestamps and lane numbers. Lanes play the role of thread ids in the
// trace: a span acquires the lowest free lane when it starts and releases
// it when it completes, so concurrent spans render side by side instead of
// overlapping on one row.
//
// Buffering is bounded: events accumulate in a fixed-size in-memory buffer
// and are flushed to the underlying file whenever the buffer fills, so a
// million-event campaign costs bounded memory (the file grows instead).
// Close flushes the tail and terminates the JSON document; a file from a
// crashed process (no Close) is still salvageable because Perfetto
// tolerates a truncated trailing event list.
package tracefile

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultBufferEvents is the default bound on buffered events before a
// flush to the underlying writer (~100 bytes/event → a few MB of memory).
const DefaultBufferEvents = 16384

// event is one buffered trace event.
type event struct {
	name   string
	detail string
	ph     byte  // 'X' complete, 'i' instant, 'M' metadata
	ts     int64 // µs since writer start
	dur    int64 // µs ('X' only)
	lane   int32 // trace tid
	pid    int32 // trace pid (0 = the default process 1)
	meta   string
}

// Writer emits one Chrome trace-event JSON document. All methods are safe
// for concurrent use and safe on a nil receiver (the disabled state), so
// callers can thread an optional *Writer without nil checks.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	start   time.Time
	buf     []event
	max     int
	wrote   int64 // events written to the file so far
	dropped int64 // events lost to write errors
	err     error // first write error (sticky)
	closed  bool

	// lane allocator: lanes[i] true = in use. freeHint is the lowest lane
	// that might be free.
	lanes    []bool
	freeHint int32
}

// Create opens (or truncates) path and starts a trace document.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	w := &Writer{
		f:     f,
		w:     bufio.NewWriterSize(f, 1<<16),
		start: time.Now(),
		max:   DefaultBufferEvents,
	}
	// The object form (vs the bare array) lets us carry displayTimeUnit and
	// keeps the document extensible; Perfetto accepts both.
	if _, err := w.w.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		f.Close()
		return nil, fmt.Errorf("tracefile: %w", err)
	}
	return w, nil
}

// BeginLane reserves the lowest free lane for a starting span. Lanes map to
// trace thread ids, so concurrent spans occupy distinct rows in the viewer.
// Returns 0 on a nil receiver.
func (w *Writer) BeginLane() int32 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := int(w.freeHint); i < len(w.lanes); i++ {
		if !w.lanes[i] {
			w.lanes[i] = true
			w.freeHint = int32(i) + 1
			return int32(i)
		}
	}
	w.lanes = append(w.lanes, true)
	lane := int32(len(w.lanes) - 1)
	w.freeHint = lane + 1
	return lane
}

// EndLane returns a lane to the free pool. Safe on a nil receiver.
func (w *Writer) EndLane(lane int32) {
	if w == nil {
		return
	}
	w.mu.Lock()
	if int(lane) < len(w.lanes) {
		w.lanes[lane] = false
		if lane < w.freeHint {
			w.freeHint = lane
		}
	}
	w.mu.Unlock()
}

// Complete records one finished span as a complete ("X") event on the given
// lane. Safe on a nil receiver.
func (w *Writer) Complete(name, detail string, start time.Time, dur time.Duration, lane int32) {
	if w == nil {
		return
	}
	w.add(event{
		name:   name,
		detail: detail,
		ph:     'X',
		ts:     start.Sub(w.start).Microseconds(),
		dur:    dur.Microseconds(),
		lane:   lane,
	})
}

// Instant records a zero-duration marker ("i") event on lane 0. Safe on a
// nil receiver.
func (w *Writer) Instant(name, detail string, at time.Time) {
	if w == nil {
		return
	}
	w.add(event{name: name, detail: detail, ph: 'i', ts: at.Sub(w.start).Microseconds()})
}

// CompleteOn records one complete ("X") event on an explicit (pid, tid)
// pair — the raw emission the fleet coordinator uses to stitch worker
// trace segments into one timeline (one process group per shard, one
// thread per worker lane). pid <= 0 falls back to the default process 1.
// Safe on a nil receiver.
func (w *Writer) CompleteOn(pid, tid int32, name, detail string, start time.Time, dur time.Duration) {
	if w == nil {
		return
	}
	w.add(event{
		name:   name,
		detail: detail,
		ph:     'X',
		ts:     start.Sub(w.start).Microseconds(),
		dur:    dur.Microseconds(),
		lane:   tid,
		pid:    pid,
	})
}

// InstantOn records a zero-duration marker on an explicit (pid, tid)
// pair. Safe on a nil receiver.
func (w *Writer) InstantOn(pid, tid int32, name, detail string, at time.Time) {
	if w == nil {
		return
	}
	w.add(event{name: name, detail: detail, ph: 'i', ts: at.Sub(w.start).Microseconds(), lane: tid, pid: pid})
}

// ProcessName emits the process_name metadata event labelling pid's row
// group in the viewer. Safe on a nil receiver.
func (w *Writer) ProcessName(pid int32, name string) {
	if w == nil {
		return
	}
	w.add(event{name: "process_name", ph: 'M', pid: pid, meta: name})
}

// ThreadName emits the thread_name metadata event labelling (pid, tid)'s
// row in the viewer. Safe on a nil receiver.
func (w *Writer) ThreadName(pid, tid int32, name string) {
	if w == nil {
		return
	}
	w.add(event{name: "thread_name", ph: 'M', pid: pid, lane: tid, meta: name})
}

func (w *Writer) add(ev event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.dropped++
		return
	}
	w.buf = append(w.buf, ev)
	if len(w.buf) >= w.max {
		w.flushLocked()
	}
}

// flushLocked encodes and writes every buffered event. Events are sorted by
// timestamp within the batch so the file stays roughly time-ordered (the
// format does not require it, but it keeps diffs and partial reads sane).
func (w *Writer) flushLocked() {
	if len(w.buf) == 0 || w.err != nil {
		w.buf = w.buf[:0]
		return
	}
	sort.SliceStable(w.buf, func(i, j int) bool { return w.buf[i].ts < w.buf[j].ts })
	var sb strings.Builder
	for _, ev := range w.buf {
		if w.wrote > 0 {
			sb.WriteString(",\n")
		}
		w.wrote++
		pid := ev.pid
		if pid <= 0 {
			pid = 1
		}
		fmt.Fprintf(&sb, `{"name":%s,"ph":"%c","ts":%d,"pid":%d,"tid":%d`,
			quote(ev.name), ev.ph, ev.ts, pid, ev.lane)
		if ev.ph == 'X' {
			fmt.Fprintf(&sb, `,"dur":%d`, ev.dur)
		}
		if ev.ph == 'i' {
			sb.WriteString(`,"s":"g"`)
		}
		switch {
		case ev.ph == 'M':
			fmt.Fprintf(&sb, `,"args":{"name":%s}`, quote(ev.meta))
		case ev.detail != "":
			fmt.Fprintf(&sb, `,"args":{"detail":%s}`, quote(ev.detail))
		}
		sb.WriteString("}")
	}
	if _, err := w.w.WriteString(sb.String()); err != nil && w.err == nil {
		w.err = err
		w.dropped += int64(len(w.buf))
	}
	w.buf = w.buf[:0]
}

// Flush forces buffered events to the underlying file. Safe on a nil
// receiver.
func (w *Writer) Flush() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushLocked()
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// Events returns how many events were written and how many were dropped
// (write errors or events arriving after Close). Safe on a nil receiver.
func (w *Writer) Events() (written, dropped int64) {
	if w == nil {
		return 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wrote, w.dropped
}

// Close flushes the tail, terminates the JSON document and closes the file.
// Safe on a nil receiver; idempotent.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushLocked()
	if _, err := w.w.WriteString("\n]}\n"); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}

// quote renders s as a JSON string without pulling in encoding/json on the
// flush path. The span names and details we emit are ASCII identifiers and
// wire names; anything unprintable is escaped numerically.
func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&sb, `\u%04x`, c)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
