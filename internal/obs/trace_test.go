package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs/tracefile"
)

// TestProgressETAPlaceholder: the ETA column must degrade to "--:--" instead
// of a garbage duration when the total is unknown, the rate is still zero
// (first tick of a slow run), or the count is already complete.
func TestProgressETAPlaceholder(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("done")
	total := r.Gauge("total") // left at 0: unknown

	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(ProgressConfig{
		Label: "search", Unit: "wires", Out: w,
		Interval: time.Hour, // only the final stop() line fires
		Done:     done, Total: total,
	})
	stop()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "eta --:--") {
		t.Fatalf("unknown total must print eta --:--, got %q", out)
	}

	// Zero rate with a known total: first tick of a slow run.
	buf.Reset()
	total.Set(100)
	stop = StartProgress(ProgressConfig{
		Label: "search", Unit: "wires", Out: w,
		Interval: time.Hour,
		Done:     done, Total: total,
	})
	stop()
	mu.Lock()
	out = buf.String()
	mu.Unlock()
	if !strings.Contains(out, "eta --:--") {
		t.Fatalf("zero rate must print eta --:--, got %q", out)
	}
}

// TestProgressETAProjection: with a known total and a nonzero rate the ETA
// column carries a real duration.
func TestProgressETAProjection(t *testing.T) {
	r := NewRegistry()
	done := r.Counter("done")
	total := r.Gauge("total")
	total.Set(1000)
	done.Add(10)

	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := StartProgress(ProgressConfig{
		Label: "campaign", Unit: "points", Out: w,
		Interval: time.Hour,
		Done:     done, Total: total,
	})
	time.Sleep(20 * time.Millisecond) // lifetime rate becomes nonzero
	stop()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "eta ") || strings.Contains(out, "eta --:--") {
		t.Fatalf("known total and rate must project an ETA, got %q", out)
	}
}

// TestConcurrentScrapes hammers both exporters while every metric kind
// mutates concurrently; under -race this proves scrapes see consistent
// snapshots without locking writers out.
func TestConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("scrape_test_total", "worker", string(rune('a'+g)))
			ga := r.Gauge("scrape_test_gauge")
			h := r.Histogram("scrape_test_hist", LinearBuckets(1, 1, 4))
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				c.Inc()
				ga.Set(int64(i))
				h.Observe(float64(i % 6))
				sp := r.StartSpan("scrape/work")
				sp.End()
			}
		}(g)
	}
	for s := 0; s < 50; s++ {
		var prom, js bytes.Buffer
		if err := WritePrometheus(&prom, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, r); err != nil {
			t.Fatal(err)
		}
		if !json.Valid(js.Bytes()) {
			t.Fatalf("scrape %d: invalid JSON: %s", s, js.String())
		}
		if !strings.Contains(prom.String(), "process_uptime_seconds") {
			t.Fatalf("scrape %d: prometheus output truncated", s)
		}
	}
	close(stopCh)
	wg.Wait()
}

// TestTracerMirrorsSpans: with a trace writer attached, every ended span
// becomes a complete event named by its path, carrying its Detail.
func TestTracerMirrorsSpans(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	tw, err := tracefile.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	r.AttachTracer(tw)

	outer := r.StartSpan("campaign")
	inner := outer.Start("batch").Detail("cycle %d, %d lanes", 7, 64)
	inner.End()
	outer.End()
	r.Instant("interrupt", "SIGINT")
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Detail string `json:"detail"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, data)
	}
	got := map[string]string{}
	for _, ev := range doc.TraceEvents {
		got[ev.Name] = ev.Args.Detail
	}
	if _, ok := got["campaign"]; !ok {
		t.Fatalf("missing campaign span event: %v", got)
	}
	if got["campaign/batch"] != "cycle 7, 64 lanes" {
		t.Fatalf("batch span detail = %q", got["campaign/batch"])
	}
	if got["interrupt"] != "SIGINT" {
		t.Fatalf("instant event detail = %q", got["interrupt"])
	}
}

// TestSpansWithoutTracer: Detail and End stay no-ops on the trace side when
// no tracer is attached (and on nil spans).
func TestSpansWithoutTracer(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("x").Detail("ignored %d", 1)
	sp.End()
	var nilSpan *Span
	nilSpan.Detail("ignored").End()
	r.Instant("marker", "no tracer attached")
	var nilReg *Registry
	nilReg.Instant("marker", "nil registry")
	nilReg.AttachTracer(nil)
}

func TestCLIOptionsTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{"-trace", path}); err != nil {
		t.Fatal(err)
	}
	if !o.Enabled() {
		t.Fatal("-trace must enable observability")
	}
	var errw bytes.Buffer
	reg, cleanup, err := o.Init(&errw)
	if err != nil {
		t.Fatal(err)
	}
	reg.StartSpan("unit").End()
	cleanup()
	cleanup() // idempotent

	if !strings.Contains(errw.String(), "trace: wrote") {
		t.Fatalf("cleanup must announce the trace file, got %q", errw.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("trace file is not valid JSON: %s", data)
	}
	if !strings.Contains(string(data), `"unit"`) {
		t.Fatalf("trace file missing span event: %s", data)
	}
}

// TestCLIStartProgressHelper: the shared helper is a no-op without -progress
// and drives the reporter with the caller's config when enabled.
func TestCLIStartProgressHelper(t *testing.T) {
	r := NewRegistry()
	o := &CLIOptions{}
	o.StartProgress(r, ProgressConfig{Done: r.Counter("d"), Total: r.Gauge("t")})() // no-op

	o.Progress = true
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	r.Counter("helper_done").Add(2)
	r.Gauge("helper_total").Set(4)
	stop := o.StartProgress(r, ProgressConfig{
		Label: "helper", Unit: "items", Out: w, Interval: time.Hour,
		Done: r.Counter("helper_done"), Total: r.Gauge("helper_total"),
	})
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "helper: 2/4 items") {
		t.Fatalf("helper did not start the reporter: %q", out)
	}

	// Nil registry keeps it a no-op even with -progress set.
	o.StartProgress(nil, ProgressConfig{})()
}
