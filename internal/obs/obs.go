// Package obs is the zero-dependency instrumentation layer of the pruning
// pipeline: a registry of counters, gauges and histograms, hierarchical
// timing spans, a periodic progress reporter (progress.go), exporters for
// the Prometheus text format and JSON (export.go), and an embedded
// /metrics + pprof HTTP endpoint (http.go).
//
// Instrumentation is strictly opt-in and nil-safe end to end:
//
//   - a nil *Registry hands out nil metric handles,
//   - every method on a nil *Counter, *Gauge, *Histogram or *Span is a
//     no-op,
//
// so the hot paths of core.Search, prune.EvaluateContext and the hafi
// campaign engines pay exactly one pointer check per event when no
// registry is attached. The per-phase benchmark suite (bench_test.go)
// runs with instrumentation disabled and guards that budget.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for Prometheus semantics; this is not
// enforced on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. All methods are safe on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Bucket bounds are upper
// inclusive limits in ascending order; an implicit +Inf bucket catches the
// rest. All methods are safe on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket bounds and the per-bucket (non-cumulative)
// counts; the final count is the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// counts by linear interpolation inside the bucket the quantile falls
// into, the same estimate promQL's histogram_quantile computes. Samples
// in the +Inf bucket are attributed to the last finite bound (the
// histogram cannot resolve beyond it). Returns 0 on a nil receiver or an
// empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	bounds, counts := h.Buckets()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return bounds[len(bounds)-1]
}

// BucketQuantiles returns the conventional (p50, p95, p99) estimates
// shared by the Prometheus and JSON exporters. Zero-valued on a nil
// receiver or an empty histogram.
func (h *Histogram) BucketQuantiles() (p50, p95, p99 float64) {
	if h == nil || h.Count() == 0 {
		return 0, 0, 0
	}
	return h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// timeSince is the wall-clock in seconds used for uptime accounting.
func timeSince(t time.Time) float64 { return time.Since(t).Seconds() }

// metricID is the registry key: metric name plus its label pairs in the
// order they were supplied.
type metricID struct {
	name   string
	labels string // "k1=v1,k2=v2" (already rendered)
}

func makeID(name string, labels []string) metricID {
	if len(labels) == 0 {
		return metricID{name: name}
	}
	var sb strings.Builder
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteByte('=')
		sb.WriteString(labels[i+1])
	}
	return metricID{name: name, labels: sb.String()}
}

// String renders the id as name{k="v",...} (Prometheus style sans quotes
// handled by the exporters).
func (id metricID) String() string {
	if id.labels == "" {
		return id.name
	}
	return id.name + "{" + id.labels + "}"
}

// Registry holds every metric of one process. The zero value is unusable;
// create registries with NewRegistry. A nil *Registry is the disabled
// state: it hands out nil metric handles and exports nothing.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricID]*Counter
	gauges     map[metricID]*Gauge
	histograms map[metricID]*Histogram
	spans      map[string]*spanStat
	start      time.Time
	// tracer, when attached, mirrors every span into a timeline file
	// (see AttachTracer). Published atomically so StartSpan never locks.
	tracer atomic.Pointer[tracerHolder]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[metricID]*Counter{},
		gauges:     map[metricID]*Gauge{},
		histograms: map[metricID]*Histogram{},
		spans:      map[string]*spanStat{},
		start:      time.Now(),
	}
}

// Counter returns (creating on first use) the counter with the given name
// and label pairs ("key", "value", ...). Returns nil on a nil registry.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	id := makeID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[id]
	if !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name and
// label pairs. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	id := makeID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[id]
	if !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name, bucket bounds and label pairs. The bounds of the first creation
// win; later calls may pass nil bounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	id := makeID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[id]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
		r.histograms[id] = h
	}
	return h
}
