package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs/tracefile"
)

// CLIOptions carries the observability flags shared by every pipeline CLI:
//
//	-metrics-addr host:port   serve /metrics (Prometheus) + /debug/pprof
//	-progress                 periodic progress line on stderr
//	-stats-json file          end-of-run JSON metrics dump ("-" = stdout)
//	-trace file               Chrome trace-event timeline (Perfetto-loadable)
//	-log-json file            structured JSONL event log ("-" = stderr)
//	-log-level level          event-log floor: debug, info, warn or error
//
// When none is given, Init returns a nil registry and instrumentation
// stays disabled (nil-safe no-ops on every hot path).
type CLIOptions struct {
	MetricsAddr string
	Progress    bool
	StatsJSON   string
	TraceFile   string
	LogJSON     string
	LogLevel    string

	// Component stamps event-log lines (default: the process name). CLIs
	// that care set it before Init.
	Component string
	// Events is the structured event log, populated by Init when -log-json
	// was given (nil otherwise — nil-safe like every obs handle).
	Events *EventLog
	// Trace is the -trace timeline writer, populated by Init so callers
	// that stitch extra (cross-process) events into the timeline can reach
	// it; nil when -trace was not given.
	Trace *tracefile.Writer
}

// RegisterFlags registers the observability flags on fs. Every CLI calls
// this once instead of declaring the flags itself, so the whole pipeline
// shares one flag vocabulary.
func RegisterFlags(fs *flag.FlagSet) *CLIOptions {
	o := &CLIOptions{}
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9137; port 0 picks one)")
	fs.BoolVar(&o.Progress, "progress", false, "print a progress line to stderr every second")
	fs.StringVar(&o.StatsJSON, "stats-json", "", "write all collected metrics as JSON to this file at exit ('-' = stdout)")
	fs.StringVar(&o.TraceFile, "trace", "", "write an execution timeline (Chrome trace-event JSON, Perfetto-loadable) to this file")
	fs.StringVar(&o.LogJSON, "log-json", "", "write a structured JSONL event log to this file ('-' = stderr)")
	fs.StringVar(&o.LogLevel, "log-level", "info", "event-log level floor: debug, info, warn or error")
	return o
}

// Enabled reports whether any observability flag was set.
func (o *CLIOptions) Enabled() bool {
	return o.MetricsAddr != "" || o.Progress || o.StatsJSON != "" || o.TraceFile != "" || o.LogJSON != ""
}

// Init materialises the selected observability features: it creates the
// registry, starts the /metrics + pprof endpoint if requested (announcing
// the bound address on errw so scripts can scrape port 0), attaches the
// -trace timeline writer, and returns a cleanup that stops the endpoint,
// writes the -stats-json dump and finalises the trace file. With no flags
// set it returns (nil, no-op, nil).
func (o *CLIOptions) Init(errw io.Writer) (*Registry, func(), error) {
	if !o.Enabled() {
		return nil, func() {}, nil
	}
	reg := NewRegistry()
	var srv *Server
	if o.MetricsAddr != "" {
		var err error
		srv, err = Serve(o.MetricsAddr, reg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(errw, "metrics: serving on %s\n", srv.Addr())
	}
	var tw *tracefile.Writer
	if o.TraceFile != "" {
		var err error
		tw, err = tracefile.Create(o.TraceFile)
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		reg.AttachTracer(tw)
		o.Trace = tw
	}
	var logClose func() error
	if o.LogJSON != "" {
		level, err := ParseLevel(o.LogLevel)
		if err != nil {
			srv.Close()
			tw.Close()
			return nil, nil, err
		}
		component := o.Component
		if component == "" {
			component = filepath.Base(os.Args[0])
		}
		w := io.Writer(os.Stderr)
		if o.LogJSON != "-" {
			f, err := os.Create(o.LogJSON)
			if err != nil {
				srv.Close()
				tw.Close()
				return nil, nil, fmt.Errorf("log-json: %w", err)
			}
			w = f
			logClose = f.Close
		}
		o.Events = NewEventLog(w, component, level)
	}
	done := false
	cleanup := func() {
		if done {
			return
		}
		done = true
		if o.StatsJSON != "" {
			if err := writeStatsFile(o.StatsJSON, reg); err != nil {
				fmt.Fprintf(errw, "stats-json: %v\n", err)
			}
		}
		if logClose != nil {
			if err := logClose(); err != nil {
				fmt.Fprintf(errw, "log-json: %v\n", err)
			}
		}
		if tw != nil {
			err := tw.Close()
			written, dropped := tw.Events()
			if err != nil {
				fmt.Fprintf(errw, "trace: %v\n", err)
			} else {
				fmt.Fprintf(errw, "trace: wrote %d events to %s", written, o.TraceFile)
				if dropped > 0 {
					fmt.Fprintf(errw, " (%d dropped)", dropped)
				}
				fmt.Fprintln(errw)
			}
		}
		srv.Close()
	}
	return reg, cleanup, nil
}

// StartProgress starts the periodic progress reporter when -progress was
// given and the registry is live; otherwise it returns a no-op stop
// function. It fills in the stderr writer so CLIs only describe their
// metric handles:
//
//	defer obsOpts.StartProgress(reg, obs.ProgressConfig{Label: ..., Done: ...})()
func (o *CLIOptions) StartProgress(reg *Registry, cfg ProgressConfig) (stop func()) {
	if !o.Progress || reg == nil {
		return func() {}
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	return StartProgress(cfg)
}

func writeStatsFile(path string, reg *Registry) error {
	if path == "-" {
		return WriteJSON(os.Stdout, reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
