package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIOptions carries the three observability flags shared by every
// pipeline CLI:
//
//	-metrics-addr host:port   serve /metrics (Prometheus) + /debug/pprof
//	-progress                 periodic progress line on stderr
//	-stats-json file          end-of-run JSON metrics dump ("-" = stdout)
//
// When none is given, Init returns a nil registry and instrumentation
// stays disabled (nil-safe no-ops on every hot path).
type CLIOptions struct {
	MetricsAddr string
	Progress    bool
	StatsJSON   string
}

// RegisterFlags registers the observability flags on fs.
func RegisterFlags(fs *flag.FlagSet) *CLIOptions {
	o := &CLIOptions{}
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9137; port 0 picks one)")
	fs.BoolVar(&o.Progress, "progress", false, "print a progress line to stderr every second")
	fs.StringVar(&o.StatsJSON, "stats-json", "", "write all collected metrics as JSON to this file at exit ('-' = stdout)")
	return o
}

// Enabled reports whether any observability flag was set.
func (o *CLIOptions) Enabled() bool {
	return o.MetricsAddr != "" || o.Progress || o.StatsJSON != ""
}

// Init materialises the selected observability features: it creates the
// registry, starts the /metrics + pprof endpoint if requested (announcing
// the bound address on errw so scripts can scrape port 0), and returns a
// cleanup that stops the endpoint and writes the -stats-json dump. With no
// flags set it returns (nil, no-op, nil).
func (o *CLIOptions) Init(errw io.Writer) (*Registry, func(), error) {
	if !o.Enabled() {
		return nil, func() {}, nil
	}
	reg := NewRegistry()
	var srv *Server
	if o.MetricsAddr != "" {
		var err error
		srv, err = Serve(o.MetricsAddr, reg)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(errw, "metrics: serving on %s\n", srv.Addr())
	}
	done := false
	cleanup := func() {
		if done {
			return
		}
		done = true
		if o.StatsJSON != "" {
			if err := writeStatsFile(o.StatsJSON, reg); err != nil {
				fmt.Fprintf(errw, "stats-json: %v\n", err)
			}
		}
		srv.Close()
	}
	return reg, cleanup, nil
}

func writeStatsFile(path string, reg *Registry) error {
	if path == "-" {
		return WriteJSON(os.Stdout, reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
