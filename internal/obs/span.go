package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// spanStat accumulates the wall-clock accounting for one span path.
type spanStat struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Tracer receives the lifecycle of every span for timeline export. It is
// the seam between the registry and internal/obs/tracefile (which
// implements it): a span acquires a lane when it starts, and reports its
// (path, detail, start, duration) on the lane when it ends, so concurrent
// spans land on distinct timeline rows. Implementations must be safe for
// concurrent use.
type Tracer interface {
	BeginLane() int32
	EndLane(lane int32)
	Complete(name, detail string, start time.Time, dur time.Duration, lane int32)
	Instant(name, detail string, at time.Time)
}

// tracerHolder wraps the Tracer for atomic publication (AttachTracer may
// race with hot-path StartSpan calls in tests).
type tracerHolder struct{ t Tracer }

// AttachTracer starts mirroring every span into t (a tracefile.Writer).
// Metrics accounting is unchanged; tracing is strictly additive. Attaching
// nil detaches the current tracer. Safe on a nil registry (no-op).
func (r *Registry) AttachTracer(t Tracer) {
	if r == nil {
		return
	}
	if t == nil {
		r.tracer.Store(nil)
		return
	}
	r.tracer.Store(&tracerHolder{t: t})
}

// Tracer returns the currently attached tracer (nil when none). The fleet
// worker uses it to tee a bounded per-shard trace segment alongside an
// operator's own -trace file. Safe on a nil registry.
func (r *Registry) Tracer() Tracer {
	if r == nil {
		return nil
	}
	if h := r.tracer.Load(); h != nil {
		return h.t
	}
	return nil
}

// teeTracer fans one span stream out to two tracers. Lanes are allocated
// on the primary (its lane numbers drive any tracefile rows); the
// secondary sees every completion on the primary's lane.
type teeTracer struct{ a, b Tracer }

// TeeTracer returns a tracer feeding both a and b; either may be nil, in
// which case the other is returned unchanged (nil when both are).
func TeeTracer(a, b Tracer) Tracer {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &teeTracer{a: a, b: b}
}

func (t *teeTracer) BeginLane() int32 { return t.a.BeginLane() }
func (t *teeTracer) EndLane(l int32)  { t.a.EndLane(l) }
func (t *teeTracer) Complete(name, detail string, start time.Time, dur time.Duration, lane int32) {
	t.a.Complete(name, detail, start, dur, lane)
	t.b.Complete(name, detail, start, dur, lane)
}
func (t *teeTracer) Instant(name, detail string, at time.Time) {
	t.a.Instant(name, detail, at)
	t.b.Instant(name, detail, at)
}

// Instant emits a zero-duration timeline marker (no metrics accounting).
// Safe on a nil registry or with no tracer attached.
func (r *Registry) Instant(name, detail string) {
	if r == nil {
		return
	}
	if h := r.tracer.Load(); h != nil {
		h.t.Instant(name, detail, time.Now())
	}
}

// Span is one running timed section. Spans form a hierarchy through
// Start: a child's path is "parent/child", so the exporters render a
// per-stage breakdown ("campaign", "campaign/golden", "campaign/batch").
// All methods are safe on a nil receiver (the disabled state).
type Span struct {
	reg    *Registry
	path   string
	detail string
	start  time.Time
	tracer Tracer
	lane   int32
}

// StartSpan begins a top-level timed section. Returns nil on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{reg: r, path: name, start: time.Now()}
	if h := r.tracer.Load(); h != nil {
		s.tracer = h.t
		s.lane = s.tracer.BeginLane()
	}
	return s
}

// Start begins a child section of s. Returns nil on a nil receiver.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now(), tracer: s.tracer}
	if c.tracer != nil {
		c.lane = c.tracer.BeginLane()
	}
	return c
}

// Detail annotates the span's timeline event with a formatted string (e.g.
// the wire name a search span works on). Metrics aggregation ignores the
// detail — span paths stay low-cardinality. Free (not even formatted) when
// no tracer is attached; safe on a nil receiver.
func (s *Span) Detail(format string, args ...interface{}) *Span {
	if s == nil || s.tracer == nil {
		return s
	}
	s.detail = fmt.Sprintf(format, args...)
	return s
}

// End stops the section and accounts its duration under the span path.
// It returns the elapsed time (0 on a nil receiver) and may be called at
// most once per span.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.mu.Lock()
	st, ok := s.reg.spans[s.path]
	if !ok {
		st = &spanStat{}
		s.reg.spans[s.path] = st
	}
	s.reg.mu.Unlock()
	st.count.Add(1)
	st.nanos.Add(int64(d))
	if s.tracer != nil {
		s.tracer.Complete(s.path, s.detail, s.start, d, s.lane)
		s.tracer.EndLane(s.lane)
	}
	return d
}

// Timed runs fn inside a span named name.
func (r *Registry) Timed(name string, fn func()) {
	sp := r.StartSpan(name)
	fn()
	sp.End()
}
