package obs

import (
	"sync/atomic"
	"time"
)

// spanStat accumulates the wall-clock accounting for one span path.
type spanStat struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Span is one running timed section. Spans form a hierarchy through
// Start: a child's path is "parent/child", so the exporters render a
// per-stage breakdown ("campaign", "campaign/golden", "campaign/batch").
// All methods are safe on a nil receiver (the disabled state).
type Span struct {
	reg   *Registry
	path  string
	start time.Time
}

// StartSpan begins a top-level timed section. Returns nil on a nil
// registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, path: name, start: time.Now()}
}

// Start begins a child section of s. Returns nil on a nil receiver.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{reg: s.reg, path: s.path + "/" + name, start: time.Now()}
}

// End stops the section and accounts its duration under the span path.
// It returns the elapsed time (0 on a nil receiver) and may be called at
// most once per span.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.reg.mu.Lock()
	st, ok := s.reg.spans[s.path]
	if !ok {
		st = &spanStat{}
		s.reg.spans[s.path] = st
	}
	s.reg.mu.Unlock()
	st.count.Add(1)
	st.nanos.Add(int64(d))
	return d
}

// Timed runs fn inside a span named name.
func (r *Registry) Timed(name string, fn func()) {
	sp := r.StartSpan(name)
	fn()
	sp.End()
}
