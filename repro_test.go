package repro

// End-to-end reproduction checks: these tests assert the *shape* of the
// paper's results on the rebuilt substrate (who wins, by roughly what
// factor, which trends hold) — the absolute numbers differ because our
// cores are smaller than the authors' RTL (see EXPERIMENTS.md).
import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/netlist"
	"repro/internal/prune"
)

// TestReproTable1Shape checks the structural claims behind Table 1.
func TestReproTable1Shape(t *testing.T) {
	params := core.DefaultSearchParams()
	avrRows := experiments.Table1(experiments.PrepareAVR(), params)
	mspRows := experiments.Table1(experiments.PrepareMSP430(), params)

	avrFF, avrNoRF := avrRows[0], avrRows[1]
	mspFF := mspRows[0]

	// The register file dominates the AVR's flip-flop count (paper: 383 vs
	// 135 without RF), and is a smaller share on the MSP430.
	if avrNoRF.FaultyWires*2 > avrFF.FaultyWires {
		t.Errorf("AVR regfile should dominate: %d of %d non-RF", avrNoRF.FaultyWires, avrFF.FaultyWires)
	}
	if mspFF.FaultyWires <= avrFF.FaultyWires {
		t.Errorf("MSP430 must hold more state: %d vs %d FFs", mspFF.FaultyWires, avrFF.FaultyWires)
	}
	// The multi-cycle MSP430 has markedly smaller fault cones (paper: 287
	// vs 656 average gates).
	if mspFF.AvgCone >= avrFF.AvgCone {
		t.Errorf("MSP430 cones should be smaller: %.0f vs %.0f", mspFF.AvgCone, avrFF.AvgCone)
	}
	// The search always stays far below the paper's 3-minute bound.
	for _, r := range [][]experiments.Table1Row{avrRows, mspRows} {
		for _, row := range r {
			if row.RunTime.Seconds() > 180 {
				t.Errorf("%s %s: search took %v (> 3 min)", row.CPU, row.FaultSet, row.RunTime)
			}
			if row.MATEs == 0 {
				t.Errorf("%s %s: no MATEs found", row.CPU, row.FaultSet)
			}
			if row.Unmaskable >= row.FaultyWires {
				t.Errorf("%s %s: everything unmaskable", row.CPU, row.FaultSet)
			}
		}
	}
	t.Log("\n" + experiments.FormatTable1(append(avrRows, mspRows...)))
}

// TestReproTables23Shape checks the headline trends of Tables 2 and 3.
func TestReproTables23Shape(t *testing.T) {
	params := core.DefaultSearchParams()
	avr := experiments.Perf(experiments.PrepareAVR(), params)
	msp := experiments.Perf(experiments.PrepareMSP430(), params)

	for _, tab := range []*experiments.PerfTable{avr, msp} {
		for prog, cells := range tab.Cells {
			ff := cells["FF"]
			noRF := cells["FF w/o RF"]
			// Excluding the register file raises the masked share (paper:
			// 7→14% AVR, 15→21% MSP430).
			if noRF.MaskedComplete <= ff.MaskedComplete {
				t.Errorf("%s %s: FF w/o RF (%.2f%%) must beat FF (%.2f%%)",
					tab.CPU, prog, 100*noRF.MaskedComplete, 100*ff.MaskedComplete)
			}
			// Single-digit MATE input counts — FPGA friendly (paper: < 6).
			for _, c := range []*experiments.PerfCell{ff, noRF} {
				if c.AvgInputs >= 6 {
					t.Errorf("%s %s: avg MATE inputs %.1f >= 6", tab.CPU, prog, c.AvgInputs)
				}
				if c.EffectiveMATEs == 0 {
					t.Errorf("%s %s: no effective MATEs", tab.CPU, prog)
				}
				// Top-N monotonicity and convergence toward the complete set.
				prev := 0.0
				for _, n := range experiments.TopNs {
					if c.TopSelFib[n] < prev-1e-9 {
						t.Errorf("%s %s: top-N reduction not monotone at n=%d", tab.CPU, prog, n)
					}
					prev = c.TopSelFib[n]
					if c.TopSelFib[n] > c.MaskedComplete+1e-9 {
						t.Errorf("%s %s: subset exceeds complete set", tab.CPU, prog)
					}
				}
				// Already 50 MATEs recover most of the complete-set
				// reduction (paper: "very close").
				if c.TopSelFib[50] < 0.6*c.MaskedComplete {
					t.Errorf("%s %s: top-50 recovers only %.2f%% of %.2f%%",
						tab.CPU, prog, 100*c.TopSelFib[50], 100*c.MaskedComplete)
				}
				// Cross-trace selection transfers (paper Section 5.3): the
				// conv-selected set performs comparably to the fib-selected
				// set on the same trace.
				if c.TopSelConv[200] < 0.5*c.TopSelFib[200] {
					t.Errorf("%s %s: conv-selected set collapses: %.2f%% vs %.2f%%",
						tab.CPU, prog, 100*c.TopSelConv[200], 100*c.TopSelFib[200])
				}
			}
		}
	}

	// The multi-cycle MSP430 prunes a larger share than the pipelined AVR
	// on the register-file-free fault set (paper: ~21% vs ~14%).
	a := avr.Cells["fib"]["FF w/o RF"].MaskedComplete
	m := msp.Cells["fib"]["FF w/o RF"].MaskedComplete
	if m <= a {
		t.Errorf("MSP430 (%.2f%%) must out-prune AVR (%.2f%%) without the register file", 100*m, 100*a)
	}
	// Peak reduction lands in the double digits, as in the paper.
	if m < 0.08 {
		t.Errorf("MSP430 FF w/o RF reduction %.2f%% — expected >= 8%%", 100*m)
	}

	t.Log("\n" + experiments.FormatPerf(avr, 2))
	t.Log("\n" + experiments.FormatPerf(msp, 3))
}

// TestReproMATESoundnessOnCores validates the top-50 MATE sets of both
// cores against the exact cone-duplication oracle over the full fib trace:
// every single trigger must correspond to a truly masked fault.
func TestReproMATESoundnessOnCores(t *testing.T) {
	params := core.DefaultSearchParams()
	for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
		set := core.Search(c.NL, c.FaultAll, params).Set
		top := prune.SelectTopN(set, c.TraceFib, c.FaultAll, 50)
		oracle := core.NewOracle(c.NL)
		checked := 0
		for _, m := range top.MATEs {
			n, viol := oracle.ValidateMATE(m, c.TraceFib)
			checked += n
			if viol != nil {
				t.Fatalf("%s: MATE %s unsound at %s", c.Name, m.String(c.NL), viol)
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no trigger points checked", c.Name)
		}
		t.Logf("%s: %d (cycle, wire) trigger points exactly validated, 0 violations", c.Name, checked)
	}
}

// TestReproLUTCosts checks the Section 6.1 claim: 50-100 MATEs are
// negligible next to published FI controllers and the reference FPGA.
func TestReproLUTCosts(t *testing.T) {
	params := core.DefaultSearchParams()
	for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
		rows := experiments.LUTCosts(c, params)
		for _, r := range rows {
			perMATE := float64(r.LUTs) / float64(r.TopN)
			if perMATE > 2.0 {
				t.Errorf("%s top-%d: %.2f LUTs per MATE (> 2)", r.CPU, r.TopN, perMATE)
			}
			if r.TopN <= 100 && r.VsSmall > 0.15 {
				t.Errorf("%s top-%d: %.1f%% of the smallest FI controller — not negligible",
					r.CPU, r.TopN, 100*r.VsSmall)
			}
		}
		t.Log("\n" + experiments.FormatLUT(rows))
	}
}

// TestReproCampaign runs the end-to-end HAFI campaign on both CPUs with
// validation enabled: online pruning must remove a nonzero share of the
// fault list and must never remove an effective fault.
func TestReproCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is expensive")
	}
	params := core.DefaultSearchParams()
	for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
		row, err := experiments.Campaign(context.Background(), c, "fib", 200, params, true)
		if err != nil {
			t.Fatal(err)
		}
		res := row.Result
		if res.Skipped == 0 {
			t.Errorf("%s: campaign pruned nothing", c.Name)
		}
		if res.SkippedWrong != 0 {
			t.Errorf("%s: %d pruned points were effective — soundness violated", c.Name, res.SkippedWrong)
		}
		t.Logf("%s: %d points, %d pruned (%.2f%%), outcomes %v",
			c.Name, res.Total, res.Skipped, 100*res.PrunedFraction(), res.ByOutcome)
	}
}

// TestReproDoubleFaultMSP430 exercises the Section 6.2 two-bit extension on
// the real core: search MATEs for adjacent register-file bit pairs and
// validate a sample of triggers with the joint-cone oracle.
func TestReproDoubleFaultMSP430(t *testing.T) {
	c := experiments.PrepareMSP430()
	// Adjacent pairs across the whole core (register file, operand and
	// stage registers — multi-cell upsets striking neighbouring cells).
	pairs := core.AdjacentPairs(c.NL)
	if len(pairs) > 64 {
		pairs = pairs[len(pairs)-64:] // the non-RF tail has frequent triggers
	}
	// A pair needs roughly twice the covering gates of a single fault
	// (each bit's choke points appear once per bit), so the double search
	// runs with a doubled term budget — the cost increase Section 6.2
	// predicts for multi-bit MATEs.
	params := core.DefaultSearchParams()
	params.MaxTerms = 8
	res := core.SearchDouble(c.NL, pairs, params)
	oracle := core.NewOracle(c.NL)
	validated, withMATEs := 0, 0
	for _, rep := range res.Reports {
		if len(rep.MATEs) == 0 {
			continue
		}
		withMATEs++
		cone := core.ComputeConeMulti(c.NL, []netlist.WireID{rep.Pair.A, rep.Pair.B})
		for _, m := range rep.MATEs {
			for cyc := 0; cyc < c.TraceFib.NumCycles(); cyc += 5 {
				if !m.EvalTrace(c.TraceFib, cyc) {
					continue
				}
				validated++
				if !oracle.MaskedExact(cone, c.TraceFib.RowValues(cyc)) {
					t.Fatalf("double MATE unsound for pair (%s, %s) at cycle %d",
						c.NL.WireName(rep.Pair.A), c.NL.WireName(rep.Pair.B), cyc)
				}
			}
		}
	}
	if withMATEs == 0 {
		t.Fatal("no pair has a double MATE")
	}
	if validated == 0 {
		t.Fatal("no double-MATE triggers in the sampled cycles")
	}
	t.Logf("%d pairs with double MATEs; validated %d trigger points: all masked", withMATEs, validated)
}
