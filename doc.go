// Package repro is a from-scratch Go reproduction of "Cross-Layer
// Fault-Space Pruning for Hardware-Assisted Fault Injection" (Dietrich,
// Schmider, Pusz, Payá Vayá, Lohmann — DAC 2018).
//
// The paper introduces fault-masking terms (MATEs): small boolean
// conjunctions over the border wires of a flip-flop's fault cone that,
// whenever they hold in the current circuit state, prove that a single
// event upset on that flip-flop in that clock cycle is logically masked
// within one cycle — and can therefore be pruned from a fault-injection
// campaign before it is ever executed.
//
// The repository rebuilds the complete experimental stack in pure Go
// (standard library only):
//
//   - internal/cell      — standard-cell library + gate-masking terms
//   - internal/netlist   — gate-level netlist IR and structural analyses
//   - internal/synth     — word-level structural synthesis (adders, muxes,
//     register files, ...)
//   - internal/sim       — cycle-accurate gate-level simulator with SEU
//     injection and wire-level traces
//   - internal/vcd       — VCD trace writer/parser
//   - internal/cpu/avr   — AVR-class 2-stage pipelined 8-bit core,
//     assembler and golden-model ISS
//   - internal/cpu/msp430— MSP430-class multi-cycle 16-bit core, assembler
//     and ISS
//   - internal/progs     — the paper's fib and conv workloads for both ISAs
//   - internal/core      — the contribution: fault cones, MATE search,
//     exact masking oracle
//   - internal/prune     — trace replay, fault-space accounting, top-N
//     selection
//   - internal/hafi      — HAFI platform model: campaigns, online pruning,
//     FPGA LUT cost model
//   - internal/experiments — regenerates every table and figure
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmark harness in bench_test.go regenerates each table and figure:
//
//	go test -bench=. -benchmem
//	go run ./cmd/reproduce
package repro
