// Command campaign runs a complete fault-injection campaign on the modelled
// HAFI platform: golden run, (flip-flop × cycle) fault list, checkpointed
// experiment execution with outcome classification, and optional online
// MATE pruning.
//
//	campaign -cpu avr -prog fib -stride 25
//	campaign -cpu msp430 -prog conv -stride 50 -noprune
//	campaign -cpu avr -prog fib -validate     # verify every pruned point
//
// Campaigns are interruptible and resumable: with -journal, every
// classified point is durably logged, SIGINT/SIGTERM drains in-flight
// experiments and prints the partial result with an `interrupted: true`
// marker (exit status 130), and -resume replays the journal and finishes
// only the remaining points — reproducing the exact result of an
// uninterrupted run.
//
//	campaign -cpu avr -prog fib -journal fib.journal          # crash-safe
//	campaign -cpu avr -prog fib -journal fib.journal -resume  # pick it up
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/progs"
)

// obsCleanup flushes -stats-json and stops the /metrics endpoint; installed
// by main once observability is initialised so every exit path runs it.
var obsCleanup = func() {}

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	prog := flag.String("prog", "fib", "built-in workload: fib, conv or sort")
	stride := flag.Int("stride", 25, "inject every FF at every stride-th cycle (>= 1)")
	faultModel := flag.String("fault-model", "seu", "fault model: seu, mbu[:span], set, intermittent[:period[,window]], stuck0[:window] or stuck1[:window]")
	noPrune := flag.Bool("noprune", false, "disable online MATE pruning")
	validate := flag.Bool("validate", false, "re-execute pruned points and verify benignity")
	noRF := flag.Bool("norf", false, "exclude the register file from the fault list")
	sequential := flag.Bool("sequential", false, "use the sequential controller instead of the lane-parallel batched engine")
	lanes := flag.Int("lanes", hafi.DefaultCampaignLanes, "lanes per batched device instance (positive multiple of 64)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shard the campaign over this many device instances (>= 1)")
	noEarlyExit := flag.Bool("no-early-exit", false, "disable the golden-state convergence early-exit (every experiment runs to halt or timeout)")
	noDelta := flag.Bool("no-delta", false, "disable the sparse cone-delta evaluator (batches always run dense dispatch)")
	strict := flag.Bool("strict", false, "preflight lint: treat warnings as failures")
	journalPath := flag.String("journal", "", "durably log every classified point to this file")
	resume := flag.Bool("resume", false, "resume from the -journal file: replay classified points, run only the rest")
	interruptAfter := flag.Int("interruptafter", 0, "cancel the campaign after N classified points (deterministic interruption for tests; 0 = never)")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fail(err)
	}
	obsCleanup = cleanup
	defer cleanup()

	// Argument hardening: a typo must produce a usage error, not a silent
	// fall-through to the default workload.
	switch *cpu {
	case "avr", "msp430":
	default:
		usage("unknown cpu %q (want avr or msp430)", *cpu)
	}
	switch *prog {
	case "fib", "conv", "sort":
	default:
		usage("unknown workload %q (want fib, conv or sort)", *prog)
	}
	if *stride < 1 {
		usage("-stride %d out of range (want >= 1)", *stride)
	}
	if *resume && *journalPath == "" {
		usage("-resume requires -journal")
	}
	if *workers < 1 {
		usage("-workers %d out of range (want >= 1)", *workers)
	}
	if *lanes < 64 || *lanes%64 != 0 {
		usage("-lanes %d out of range (want a positive multiple of 64)", *lanes)
	}
	modelSpec, err := hafi.ParseModelSpec(*faultModel)
	if err != nil {
		usage("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var factory func() hafi.Run
	var factoryW func() (hafi.RunW, error)
	var nl *netlist.Netlist
	var groups []string
	switch *cpu {
	case "avr":
		c := avr.NewCore()
		nl = c.NL
		p := progs.AVRFib()
		switch *prog {
		case "conv":
			p = progs.AVRConv()
		case "sort":
			p = progs.AVRSort()
		}
		factory = func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), p) }
		factoryW = func() (hafi.RunW, error) { return hafi.NewAVRRunW(avr.NewCore(), p, *lanes) }
		groups = []string{avr.GroupRegFile}
	case "msp430":
		c := msp430.NewCore()
		nl = c.NL
		p := progs.MSP430Fib()
		switch *prog {
		case "conv":
			p = progs.MSP430Conv()
		case "sort":
			p = progs.MSP430Sort()
		}
		factory = func() hafi.Run { return hafi.NewMSP430Run(msp430.NewCore(), p) }
		factoryW = func() (hafi.RunW, error) { return hafi.NewMSP430RunW(msp430.NewCore(), p, *lanes) }
		groups = []string{msp430.GroupRegFile}
	}
	if err := lint.Preflight(os.Stderr, nl, *strict); err != nil {
		fail(err)
	}
	run := factory()
	if !*noRF {
		groups = nil
	}

	start := time.Now()
	gsp := reg.StartSpan("golden")
	golden, err := hafi.RecordGolden(run, 1<<20)
	gsp.End()
	if err != nil {
		fail(err)
	}
	fmt.Printf("golden run: %d cycles, signature %016x (%v)\n",
		golden.HaltCycle, golden.Signature, time.Since(start).Round(time.Millisecond))

	var set *core.MATESet
	if !*noPrune {
		params := core.DefaultSearchParams()
		params.Context = ctx
		params.Obs = reg
		res := core.Search(nl, nl.FFQWires(groups...), params)
		if res.Interrupted {
			fmt.Println("interrupted: true (during MATE search, no experiments run)")
			obsCleanup()
			os.Exit(130)
		}
		set = res.Set
		fmt.Printf("MATE search: %d MATEs in %v\n", set.Size(), res.Elapsed.Round(time.Millisecond))
	}

	points := hafi.ModelFaultList(nl, golden.HaltCycle, *stride, modelSpec, groups...)
	ctl := hafi.NewControllerPool(factory, golden)

	var jw *journal.Writer
	var recovered *journal.Recovered
	if *journalPath != "" {
		hdr := ctl.JournalHeader(points)
		if *resume {
			jw, recovered, err = journal.ResumeInstrumented(*journalPath, hdr, reg)
			if err == nil && (recovered.Torn || recovered.Corrupt) {
				fmt.Fprintf(os.Stderr, "campaign: journal tail damaged (torn=%v corrupt=%v, %d bytes dropped); affected points will re-run\n",
					recovered.Torn, recovered.Corrupt, recovered.DroppedBytes)
			}
		} else {
			jw, err = journal.Create(*journalPath, hdr)
		}
		if err != nil {
			fail(err)
		}
		jw.Instrument(reg)
		defer jw.Close()
	}

	cfg := hafi.CampaignConfig{
		Points:           points,
		MATESet:          set,
		ValidateSkipped:  *validate,
		DisableEarlyExit: *noEarlyExit,
		DisableDelta:     *noDelta,
		Context:          ctx,
		Journal:          jw,
		Resume:           recovered,
		Obs:              reg,
		Workers:          *workers,
	}
	defer obsOpts.StartProgress(reg, obs.ProgressConfig{
		Label: "campaign", Unit: "points",
		Done:        reg.Counter("campaign_points_done_total"),
		Total:       reg.Gauge("campaign_points"),
		Masked:      reg.Counter("campaign_pruned_total"),
		Converged:   reg.Counter("campaign_converged_total"),
		Workers:     reg.Gauge("campaign_workers"),
		WorkersBusy: reg.Gauge("campaign_workers_busy"),
		Lanes:       reg.Gauge("campaign_lanes"),
	})()
	if *interruptAfter > 0 {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		cfg.Context = cctx
		n := *interruptAfter
		cfg.Progress = func(done int) {
			if done >= n {
				cancel()
			}
		}
	}

	start = time.Now()
	var res *hafi.CampaignResult
	if *sequential {
		res, err = ctl.RunCampaign(cfg)
	} else {
		res, err = ctl.RunCampaignBatchedPoolW(cfg, factoryW)
	}
	if err != nil {
		fail(err)
	}
	if recovered != nil {
		fmt.Printf("resumed:    %d points replayed from %s\n", len(recovered.ByIndex), *journalPath)
	}
	fmt.Printf("campaign:   %d injection points (stride %d, model %s)\n", res.Total, *stride, modelSpec)
	fmt.Printf("pruned:     %d (%.2f%%) proven benign online by MATEs\n",
		res.Skipped, 100*res.PrunedFraction())
	fmt.Printf("executed:   %d experiments in %v\n", res.Executed, time.Since(start).Round(time.Millisecond))
	if res.Converged > 0 {
		fmt.Printf("converged:  %d experiments retired early by golden-state convergence (%d cycles saved)\n",
			res.Converged, res.CyclesSaved)
	}
	fmt.Printf("outcomes:   benign=%d sdc=%d hang=%d\n",
		res.ByOutcome[hafi.OutcomeBenign], res.ByOutcome[hafi.OutcomeSDC], res.ByOutcome[hafi.OutcomeHang])
	if set != nil && len(res.PrunedByMATE) > 0 {
		type mateCredit struct {
			idx int
			n   int64
		}
		credits := make([]mateCredit, 0, len(res.PrunedByMATE))
		for m, n := range res.PrunedByMATE {
			credits = append(credits, mateCredit{m, n})
		}
		sort.Slice(credits, func(a, b int) bool {
			if credits[a].n != credits[b].n {
				return credits[a].n > credits[b].n
			}
			return credits[a].idx < credits[b].idx
		})
		if len(credits) > 3 {
			credits = credits[:3]
		}
		fmt.Printf("top MATEs: ")
		for i, c := range credits {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Printf(" #%d (width %d) pruned %d", c.idx, len(set.MATEs[c.idx].Literals), c.n)
		}
		fmt.Println()
	}
	if n := res.ByOutcome[hafi.OutcomeHarnessError]; n > 0 {
		fmt.Printf("harness:    %d experiments failed in the harness (outcome %s)\n", n, hafi.OutcomeHarnessError)
	}
	if *validate {
		fmt.Printf("validation: %d pruned points re-executed, %d violations\n", res.Skipped, res.SkippedWrong)
		if res.SkippedWrong > 0 {
			fail(fmt.Errorf("MATE soundness violated"))
		}
	}
	if res.Interrupted {
		fmt.Println("interrupted: true (partial result; resume with -journal ... -resume)")
		if jw != nil {
			jw.Close()
		}
		obsCleanup()
		os.Exit(130)
	}
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "campaign: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	obsCleanup()
	os.Exit(1)
}
