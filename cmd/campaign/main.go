// Command campaign runs a complete fault-injection campaign on the modelled
// HAFI platform: golden run, (flip-flop × cycle) fault list, checkpointed
// experiment execution with outcome classification, and optional online
// MATE pruning.
//
//	campaign -cpu avr -prog fib -stride 25
//	campaign -cpu msp430 -prog conv -stride 50 -noprune
//	campaign -cpu avr -prog fib -validate     # verify every pruned point
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/hafi"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/progs"
)

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	prog := flag.String("prog", "fib", "built-in workload: fib, conv or sort")
	stride := flag.Int("stride", 25, "inject every FF at every stride-th cycle")
	noPrune := flag.Bool("noprune", false, "disable online MATE pruning")
	validate := flag.Bool("validate", false, "re-execute pruned points and verify benignity")
	noRF := flag.Bool("norf", false, "exclude the register file from the fault list")
	sequential := flag.Bool("sequential", false, "use the sequential controller instead of the 64-lane batched engine")
	strict := flag.Bool("strict", false, "preflight lint: treat warnings as failures")
	flag.Parse()

	var factory func() hafi.Run
	var factory64 func() (hafi.Run64, error)
	var nl *netlist.Netlist
	var groups []string
	switch *cpu {
	case "avr":
		c := avr.NewCore()
		nl = c.NL
		p := progs.AVRFib()
		switch *prog {
		case "conv":
			p = progs.AVRConv()
		case "sort":
			p = progs.AVRSort()
		}
		factory = func() hafi.Run { return hafi.NewAVRRun(avr.NewCore(), p) }
		factory64 = func() (hafi.Run64, error) { return hafi.NewAVRRun64(avr.NewCore(), p) }
		groups = []string{avr.GroupRegFile}
	case "msp430":
		c := msp430.NewCore()
		nl = c.NL
		p := progs.MSP430Fib()
		switch *prog {
		case "conv":
			p = progs.MSP430Conv()
		case "sort":
			p = progs.MSP430Sort()
		}
		factory = func() hafi.Run { return hafi.NewMSP430Run(msp430.NewCore(), p) }
		factory64 = func() (hafi.Run64, error) { return hafi.NewMSP430Run64(msp430.NewCore(), p) }
		groups = []string{msp430.GroupRegFile}
	default:
		fail(fmt.Errorf("unknown cpu %q", *cpu))
	}
	if err := lint.Preflight(os.Stderr, nl, *strict); err != nil {
		fail(err)
	}
	run := factory()
	if !*noRF {
		groups = nil
	}

	start := time.Now()
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		fail(err)
	}
	fmt.Printf("golden run: %d cycles, signature %016x (%v)\n",
		golden.HaltCycle, golden.Signature, time.Since(start).Round(time.Millisecond))

	var set *core.MATESet
	if !*noPrune {
		res := core.Search(nl, nl.FFQWires(groups...), core.DefaultSearchParams())
		set = res.Set
		fmt.Printf("MATE search: %d MATEs in %v\n", set.Size(), res.Elapsed.Round(time.Millisecond))
	}

	points := hafi.SampledFaultList(nl, golden.HaltCycle, *stride, groups...)
	ctl := hafi.NewControllerPool(factory, golden)
	start = time.Now()
	var res *hafi.CampaignResult
	if *sequential {
		res, err = ctl.RunCampaign(hafi.CampaignConfig{
			Points:          points,
			Workers:         runtime.NumCPU(),
			MATESet:         set,
			ValidateSkipped: *validate,
		})
	} else {
		var run64 hafi.Run64
		run64, err = factory64()
		if err != nil {
			fail(err)
		}
		res, err = ctl.RunCampaignBatched(hafi.CampaignConfig{
			Points:          points,
			MATESet:         set,
			ValidateSkipped: *validate,
		}, run64)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("campaign:   %d injection points (stride %d)\n", res.Total, *stride)
	fmt.Printf("pruned:     %d (%.2f%%) proven benign online by MATEs\n",
		res.Skipped, 100*res.PrunedFraction())
	fmt.Printf("executed:   %d experiments in %v\n", res.Executed, time.Since(start).Round(time.Millisecond))
	fmt.Printf("outcomes:   benign=%d sdc=%d hang=%d\n",
		res.ByOutcome[hafi.OutcomeBenign], res.ByOutcome[hafi.OutcomeSDC], res.ByOutcome[hafi.OutcomeHang])
	if *validate {
		fmt.Printf("validation: %d pruned points re-executed, %d violations\n", res.Skipped, res.SkippedWrong)
		if res.SkippedWrong > 0 {
			fail(fmt.Errorf("MATE soundness violated"))
		}
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
