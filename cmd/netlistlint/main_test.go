package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// lintFile runs the CLI against a testdata file and returns (exit code,
// stdout, stderr).
func lintFile(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSeededDefects(t *testing.T) {
	for _, tc := range []struct {
		file     string
		analyzer string // expected in a diagnostic line
		message  string
	}{
		{"loop.v", "[comb-cycle]", "combinational cycle through"},
		{"multidriven.v", "[multi-driven]", "driven 2 times"},
		{"undriven.v", "[undriven]", "undriven but feeds"},
	} {
		t.Run(tc.file, func(t *testing.T) {
			code, out, errOut := lintFile(t, "-strict", "-verilog", filepath.Join("testdata", tc.file))
			if code != 1 {
				t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
			}
			if !strings.Contains(out, "error "+tc.analyzer) {
				t.Errorf("output missing %q diagnostic:\n%s", tc.analyzer, out)
			}
			if !strings.Contains(out, tc.message) {
				t.Errorf("output missing %q:\n%s", tc.message, out)
			}
		})
	}
}

func TestCleanFixture(t *testing.T) {
	code, out, errOut := lintFile(t, "-strict", "-verilog", filepath.Join("testdata", "clean.v"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "0 error(s), 0 warning(s)") {
		t.Errorf("unexpected summary:\n%s", out)
	}
}

func TestBadMATESet(t *testing.T) {
	code, out, _ := lintFile(t, "-verilog", filepath.Join("testdata", "clean.v"),
		"-mates", filepath.Join("testdata", "bad.mates"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, out)
	}
	if !strings.Contains(out, "error [mate-border]") || !strings.Contains(out, "inside the fault cone") {
		t.Errorf("output missing mate-border diagnostic:\n%s", out)
	}
}

func TestBuiltinCores(t *testing.T) {
	for _, cpu := range []string{"avr", "msp430"} {
		code, out, errOut := lintFile(t, "-strict", "-cpu", cpu)
		if code != 0 {
			t.Errorf("%s: exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", cpu, code, out, errOut)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := lintFile(t, "-json", "-verilog", filepath.Join("testdata", "multidriven.v"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out, `"analyzer": "multi-driven"`) || !strings.Contains(out, `"severity": "error"`) {
		t.Errorf("JSON output missing fields:\n%s", out)
	}
}

func TestAnalyzerSelection(t *testing.T) {
	// Selecting only comb-cycle must hide the multi-driven finding.
	code, out, _ := lintFile(t, "-analyzers", "comb-cycle", "-verilog",
		filepath.Join("testdata", "multidriven.v"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out)
	}
	if strings.Contains(out, "multi-driven") {
		t.Errorf("unselected analyzer ran:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-cpu", "z80"},
		{"-cpu", "avr", "-verilog", "x.v"},
		{"-verilog", "testdata/does-not-exist.v"},
		{"-analyzers", "no-such", "-cpu", "avr"},
		{"-mates", "testdata/bad.mates", "-verilog", "testdata/multidriven.v"}, // ill-formed netlist
	} {
		if code, _, _ := lintFile(t, args...); code != 2 {
			t.Errorf("args %v: exit code = %d, want 2", args, code)
		}
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := lintFile(t, "-list")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"multi-driven", "comb-cycle", "gm-terms", "mate-border"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}
