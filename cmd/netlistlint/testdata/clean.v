// well-formed fixture: one AND gate into a flip-flop
module clean (a, b, q);
  input a; input b; output q;
  wire n1;
  AND2 g0 (.A(a), .B(b), .Y(n1));
  DFF ff0 (.D(n1), .Q(q));
endmodule
