// seeded defect: combinational cycle g0 -> g1 -> g0
module loop (a, q);
  input a; output q;
  wire w1; wire w2;
  AND2 g0 (.A(a), .B(w2), .Y(w1));
  INV g1 (.A(w1), .Y(w2));
  DFF ff0 (.D(w1), .Q(q));
endmodule
