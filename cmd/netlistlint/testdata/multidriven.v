// seeded defect: wire n1 has two drivers
module multidriven (a, b, q);
  input a; input b; output q;
  wire n1;
  INV g0 (.A(a), .Y(n1));
  INV g1 (.A(b), .Y(n1));
  DFF ff0 (.D(n1), .Q(q));
endmodule
