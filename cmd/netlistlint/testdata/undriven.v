// seeded defect: wire nf floats but feeds gate g0
module undriven (a, q);
  input a; output q;
  wire n1; wire nf;
  AND2 g0 (.A(a), .B(nf), .Y(n1));
  DFF ff0 (.D(n1), .Q(q));
endmodule
