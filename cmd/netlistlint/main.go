// Command netlistlint runs the static analyzers of internal/lint over a
// netlist: structural checks (multi-driven wires, floating inputs,
// combinational cycles, pin-count mismatches, dead logic) plus semantic
// checks of the masking data (exhaustive gate-masking term verification,
// MATE cone-border validation).
//
//	netlistlint -cpu avr                          # lint a built-in core
//	netlistlint -verilog design.v -strict         # gate a synthesized netlist
//	netlistlint -verilog design.v -mates m.mates  # also validate a MATE set
//	netlistlint -cpu avr -mates m.mates -exact    # BDD-backed soundness proofs
//	netlistlint -analyzers comb-cycle,undriven -verilog design.v
//	netlistlint -list                             # show all analyzers
//
// Exit status: 0 clean, 1 findings (errors, or any finding under -strict),
// 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/exact"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("netlistlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cpu := fs.String("cpu", "", "lint a built-in core: avr or msp430")
	verilogFile := fs.String("verilog", "", "lint this structural-Verilog netlist")
	matesFile := fs.String("mates", "", "also validate this MATE set against the netlist")
	exactOn := fs.Bool("exact", false, "re-prove the MATE set with the exact BDD engine (requires -mates)")
	exactBudget := fs.Int("exact-budget", 0, "BDD node budget per fault cone (0 = default)")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer names (default: all)")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit the result as JSON")
	strict := fs.Bool("strict", false, "treat warnings as failures")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Structural() {
			fmt.Fprintf(stdout, "%-16s structural  %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.Semantic() {
			fmt.Fprintf(stdout, "%-16s semantic    %s\n", a.Name, a.Doc)
		}
		return 0
	}

	var nl *netlist.Netlist
	switch {
	case *cpu != "" && *verilogFile != "":
		fmt.Fprintln(stderr, "netlistlint: -cpu and -verilog are mutually exclusive")
		return 2
	case *cpu == "avr":
		nl = avr.NewCore().NL
	case *cpu == "msp430":
		nl = msp430.NewCore().NL
	case *cpu != "":
		fmt.Fprintf(stderr, "netlistlint: unknown cpu %q\n", *cpu)
		return 2
	case *verilogFile != "":
		f, err := os.Open(*verilogFile)
		if err != nil {
			fmt.Fprintf(stderr, "netlistlint: %v\n", err)
			return 2
		}
		nl, err = verilog.ReadRaw(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "netlistlint: %v\n", err)
			return 2
		}
		// Best-effort finalization so the NeedsFinished analyzers can run;
		// on failure the structural analyzers report each defect precisely,
		// so the error itself is redundant.
		nl.Finish()
	default:
		fmt.Fprintln(stderr, "netlistlint: pick a netlist with -cpu or -verilog (or use -list)")
		fs.Usage()
		return 2
	}

	opts := lint.Options{}
	if *analyzers != "" {
		var names []string
		for _, n := range strings.Split(*analyzers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		as, err := lint.ByNames(names)
		if err != nil {
			fmt.Fprintf(stderr, "netlistlint: %v\n", err)
			return 2
		}
		opts.Analyzers = as
	}
	if *matesFile != "" {
		if !nl.Finished() {
			fmt.Fprintln(stderr, "netlistlint: cannot validate a MATE set against an ill-formed netlist; fix the structural errors first")
			return 2
		}
		f, err := os.Open(*matesFile)
		if err != nil {
			fmt.Fprintf(stderr, "netlistlint: %v\n", err)
			return 2
		}
		set, err := core.ReadMATESet(f, nl)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "netlistlint: %v\n", err)
			return 2
		}
		opts.MATESet = set
	}
	if *exactOn {
		if opts.MATESet == nil {
			fmt.Fprintln(stderr, "netlistlint: -exact needs a MATE set (-mates)")
			return 2
		}
		opts.Exact = &exact.Options{NodeBudget: *exactBudget}
	}

	res := lint.Run(nl, opts)
	var err error
	if *jsonOut {
		err = res.WriteJSON(stdout)
	} else {
		err = res.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "netlistlint: %v\n", err)
		return 2
	}
	if res.Failed(*strict) {
		return 1
	}
	return 0
}
