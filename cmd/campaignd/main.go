// Command campaignd is the fleet coordinator: it plans a fault-injection
// campaign (golden run, fault list, MATE search), splits the fault space
// into shards, and serves them to campaignworker processes over HTTP/JSON
// under TTL leases with fencing tokens. Worker crashes re-lease, zombie
// uploads are fenced off, and the coordinator's own state (lease table,
// shard status) is journaled to -dir so a restarted coordinator resumes the
// campaign exactly where it stopped. Once every shard's journal has been
// uploaded and verified, the shards are merged into one campaign journal —
// point-for-point identical to an uninterrupted single-process run, and
// directly consumable by campaignreport.
//
//	campaignd -cpu avr -prog fib -stride 25 -shards 8 -addr 127.0.0.1:9200 -dir /tmp/fleet
//	campaignworker -coordinator http://127.0.0.1:9200 &   # as many as you like
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hafi"
	"repro/internal/lint"
	"repro/internal/obs"
)

var obsCleanup = func() {}

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	prog := flag.String("prog", "fib", "built-in workload: fib, conv or sort")
	stride := flag.Int("stride", 25, "inject every FF at every stride-th cycle (>= 1)")
	faultModel := flag.String("fault-model", "seu", "fault model: seu, mbu[:span], set, intermittent[:period[,window]], stuck0[:window] or stuck1[:window]")
	noPrune := flag.Bool("noprune", false, "disable online MATE pruning")
	noRF := flag.Bool("norf", false, "exclude the register file from the fault list")
	noEarlyExit := flag.Bool("no-early-exit", false, "disable the golden-state convergence early-exit fleet-wide")
	shards := flag.Int("shards", 8, "split the fault space into this many shards (>= 1)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "lease expiry without a heartbeat (> 0)")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat interval advertised to workers (default lease-ttl/4; must be < lease-ttl)")
	addr := flag.String("addr", "127.0.0.1:9200", "host:port the coordinator API listens on")
	dir := flag.String("dir", "", "durable coordinator directory (state log + spooled shard journals)")
	output := flag.String("output", "", "merged campaign journal path (default <dir>/campaign.journal)")
	strict := flag.Bool("strict", false, "preflight lint: treat warnings as failures")
	stragglerFrac := flag.Float64("straggler-fraction", 0.35, "flag a worker as a straggler below this fraction of the fleet-median throughput (0 < f < 1)")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	obsOpts.Component = "campaignd"
	flag.Parse()

	// Argument hardening up front: a bad flag must be a usage error before
	// the golden run burns a minute of CPU.
	switch *cpu {
	case "avr", "msp430":
	default:
		usage("unknown cpu %q (want avr or msp430)", *cpu)
	}
	switch *prog {
	case "fib", "conv", "sort":
	default:
		usage("unknown workload %q (want fib, conv or sort)", *prog)
	}
	if *stride < 1 {
		usage("-stride %d out of range (want >= 1)", *stride)
	}
	if *shards < 1 {
		usage("-shards %d out of range (want >= 1)", *shards)
	}
	modelSpec, err := hafi.ParseModelSpec(*faultModel)
	if err != nil {
		usage("%v", err)
	}
	if *leaseTTL <= 0 {
		usage("-lease-ttl %v out of range (want > 0)", *leaseTTL)
	}
	hb := *heartbeat
	if hb == 0 {
		hb = *leaseTTL / 4
	}
	if hb <= 0 || hb >= *leaseTTL {
		usage("-heartbeat %v must be positive and below -lease-ttl %v", *heartbeat, *leaseTTL)
	}
	if *dir == "" {
		usage("-dir is required (the coordinator's durable state lives there)")
	}
	if _, _, err := net.SplitHostPort(*addr); err != nil {
		usage("bad -addr %q: %v", *addr, err)
	}
	if *stragglerFrac <= 0 || *stragglerFrac >= 1 {
		usage("-straggler-fraction %v out of range (want 0 < f < 1)", *stragglerFrac)
	}

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fail(err)
	}
	obsCleanup = cleanup
	defer cleanup()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target, err := fleet.NewTarget(*cpu, *prog)
	if err != nil {
		fail(err)
	}
	if err := lint.Preflight(os.Stderr, target.NL, *strict); err != nil {
		fail(err)
	}
	groups := target.RFGroups
	if !*noRF {
		groups = nil
	}

	start := time.Now()
	golden, err := hafi.RecordGolden(target.NewRun(), 1<<20)
	if err != nil {
		fail(err)
	}
	fmt.Printf("golden run: %d cycles, signature %016x (%v)\n",
		golden.HaltCycle, golden.Signature, time.Since(start).Round(time.Millisecond))

	var mateSet string
	if !*noPrune {
		params := core.DefaultSearchParams()
		params.Context = ctx
		params.Obs = reg
		res := core.Search(target.NL, target.NL.FFQWires(groups...), params)
		if res.Interrupted {
			fmt.Println("interrupted: true (during MATE search, no shards planned)")
			obsCleanup()
			os.Exit(130)
		}
		var sb strings.Builder
		if err := core.WriteMATESet(&sb, target.NL, res.Set); err != nil {
			fail(err)
		}
		mateSet = sb.String()
		fmt.Printf("MATE search: %d MATEs in %v\n", res.Set.Size(), res.Elapsed.Round(time.Millisecond))
	}

	points := hafi.ModelFaultList(target.NL, golden.HaltCycle, *stride, modelSpec, groups...)
	coord, err := fleet.NewCoordinator(points, golden.Signature, fleet.Options{
		Shards:    *shards,
		LeaseTTL:  *leaseTTL,
		Heartbeat: hb,
		Dir:       *dir,
		Output:    *output,
		Spec: fleet.Spec{
			CPU: *cpu, Prog: *prog, Stride: *stride, NoRF: *noRF,
			FaultModel: modelSpec.String(),
			MATESet:    mateSet, DisableEarlyExit: *noEarlyExit,
		},
		Obs:               reg,
		Events:            obsOpts.Events,
		Trace:             obsOpts.Trace,
		StragglerFraction: *stragglerFrac,
		Logf:              func(format string, args ...interface{}) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		fail(err)
	}
	defer coord.Close()

	// The 1 Hz -progress line is driven by the heartbeat-aggregated fleet
	// gauges: before the first telemetry-bearing heartbeat the done gauge
	// stays 0 and the reporter degrades to "--:--" for the ETA.
	stopProgress := obsOpts.StartProgress(reg, obs.ProgressConfig{
		Label:     "fleet",
		Unit:      "points",
		DoneGauge: reg.Gauge("fleet_points_done"),
		Total:     reg.Gauge("fleet_points_total"),
	})
	defer stopProgress()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	srv := &http.Server{Handler: fleet.NewHandler(coord, reg), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	st := coord.Status()
	fmt.Printf("coordinator: %d points in %d shards on http://%s (lease TTL %v, heartbeat %v)\n",
		len(points), st.Shards, ln.Addr(), *leaseTTL, hb)
	fmt.Printf("dashboard:   http://%s/dashboard (JSON: /status, trace %s)\n", ln.Addr(), st.TraceID)

	select {
	case <-coord.MergedCh():
	case <-ctx.Done():
		st := coord.Status()
		fmt.Printf("interrupted: true (%d/%d shards done; restart campaignd with the same -dir to resume)\n",
			st.Done, st.Shards)
		srv.Close()
		coord.Close()
		obsCleanup()
		os.Exit(130)
	}

	// Linger so polling workers observe the "done" verdict before the API
	// disappears.
	linger := time.NewTimer(2 * hb)
	defer linger.Stop()
	select {
	case <-linger.C:
	case <-ctx.Done():
	}

	st = coord.Status()
	fmt.Printf("campaign:   %d shards merged into %s\n", st.Shards, st.Output)
	fmt.Printf("fleet:      %d leases granted, %d expired, %d re-leased, %d stale completions fenced off\n",
		st.Counters.LeasesGranted, st.Counters.LeaseExpiries, st.Counters.LeaseRegrants, st.Counters.CompletionsStale)
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "campaignd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "campaignd: %v\n", err)
	obsCleanup()
	os.Exit(1)
}
