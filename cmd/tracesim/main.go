// Command tracesim simulates a workload on one of the built-in processor
// netlists, cycle by cycle at gate level, and writes the wire-level trace
// as a VCD file — the equivalent of the paper's netlist-simulation step.
//
//	tracesim -cpu avr -prog fib -o avr_fib.vcd
//	tracesim -cpu msp430 -prog conv -cycles 8500 -o msp_conv.vcd
//	tracesim -cpu avr -asm myprog.s -o my.vcd
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/sim"
	"repro/internal/vcd"
)

// obsCleanup flushes -stats-json and stops the /metrics endpoint; installed
// by main once observability is initialised so every exit path runs it.
var obsCleanup = func() {}

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	prog := flag.String("prog", "fib", "built-in workload: fib, conv or sort")
	asm := flag.String("asm", "", "assemble this file instead of a built-in workload")
	cycles := flag.Int("cycles", progs.TraceCycles, "number of cycles to record (>= 1)")
	out := flag.String("o", "", "VCD output file (default: <cpu>_<prog>.vcd)")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	reg, cleanup, oerr := obsOpts.Init(os.Stderr)
	if oerr != nil {
		fail(oerr)
	}
	obsCleanup = cleanup
	defer cleanup()

	// Argument hardening: a typo must produce a usage error, not a silent
	// fall-through to a default workload.
	switch *cpu {
	case "avr", "msp430":
	default:
		usage("unknown cpu %q (want avr or msp430)", *cpu)
	}
	switch *prog {
	case "fib", "conv", "sort":
	default:
		usage("unknown workload %q (want fib, conv or sort)", *prog)
	}
	if *cycles < 1 {
		usage("-cycles %d out of range (want >= 1)", *cycles)
	}

	var program []uint16
	var err error
	src := ""
	if *asm != "" {
		data, rerr := os.ReadFile(*asm)
		if rerr != nil {
			fail(rerr)
		}
		src = string(data)
	}

	var cyclesDone *obs.Counter
	var onCycle func(int)
	if reg != nil {
		reg.Gauge("tracesim_cycles").Set(int64(*cycles))
		cyclesDone = reg.Counter("tracesim_cycles_done_total")
		onCycle = func(int) { cyclesDone.Inc() }
		defer obsOpts.StartProgress(reg, obs.ProgressConfig{
			Label: "tracesim", Unit: "cycles",
			Done:  cyclesDone,
			Total: reg.Gauge("tracesim_cycles"),
		})()
	}
	record := func(m *sim.Machine, env sim.Env) *sim.Trace {
		sp := reg.StartSpan("record")
		defer sp.End()
		return sim.RecordObserved(m, env, *cycles, onCycle)
	}

	var nl *netlist.Netlist
	var tr *sim.Trace
	switch *cpu {
	case "avr":
		switch {
		case src != "":
			program, err = avr.Assemble(src)
		case *prog == "fib":
			program = progs.AVRFib()
		case *prog == "conv":
			program = progs.AVRConv()
		case *prog == "sort":
			program = progs.AVRSort()
		}
		if err != nil {
			fail(err)
		}
		core := avr.NewCore()
		nl = core.NL
		sys := avr.NewSystem(core, program)
		tr = record(sys.M, sys.Env())
	case "msp430":
		switch {
		case src != "":
			program, err = msp430.Assemble(src)
		case *prog == "fib":
			program = progs.MSP430Fib()
		case *prog == "conv":
			program = progs.MSP430Conv()
		case *prog == "sort":
			program = progs.MSP430Sort()
		}
		if err != nil {
			fail(err)
		}
		core := msp430.NewCore()
		nl = core.NL
		sys := msp430.NewSystem(core, program)
		tr = record(sys.M, sys.Env())
	}

	name := *out
	if name == "" {
		name = fmt.Sprintf("%s_%s.vcd", *cpu, *prog)
	}
	f, err := os.Create(name)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := vcd.Write(f, nl, tr); err != nil {
		fail(err)
	}
	fmt.Printf("recorded %d cycles of %d wires to %s\n", tr.NumCycles(), tr.NumWires, name)
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracesim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
	obsCleanup()
	os.Exit(1)
}
