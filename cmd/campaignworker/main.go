// Command campaignworker is the fleet worker: it joins a campaignd
// coordinator, reconstructs the campaign locally from the advertised spec
// (golden run, fault list, MATE set), verifies its reconstruction against
// the coordinator's fingerprints, and then leases shards one at a time —
// running each on the 64-lane batched engine under a heartbeat, and
// uploading the shard journal with jittered exponential retry.
//
// Failure semantics: losing a lease (another worker took the shard over
// after a missed heartbeat) abandons the shard silently; a restarting
// coordinator is waited out with backoff; the first SIGINT drains (finish
// and upload the current shard, then exit 0), a second aborts (exit 130).
//
//	campaignworker -coordinator http://127.0.0.1:9200
package main

import (
	"context"
	"flag"
	"fmt"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hafi"
	"repro/internal/obs"
)

var obsCleanup = func() {}

func main() {
	coordinator := flag.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:9200 (required)")
	name := flag.String("name", "", "worker name in coordinator logs (default host-pid)")
	dir := flag.String("dir", "", "scratch directory for in-progress shard journals (default: a temp dir)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "local lane-parallel device instances per shard (>= 1)")
	lanes := flag.Int("lanes", hafi.DefaultCampaignLanes, "lanes per device instance (positive multiple of 64)")
	throttle := flag.Duration("throttle", 0, "sleep this long after every classified point (testing lever for straggler detection)")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	obsOpts.Component = "campaignworker"
	flag.Parse()

	if *coordinator == "" {
		usage("-coordinator is required")
	}
	u, err := url.Parse(*coordinator)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		usage("bad -coordinator %q (want http://host:port)", *coordinator)
	}
	if *workers < 1 {
		usage("-workers %d out of range (want >= 1)", *workers)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *dir == "" {
		tmp, err := os.MkdirTemp("", "campaignworker-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(tmp)
		*dir = tmp
	}

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fail(err)
	}
	obsCleanup = cleanup
	defer cleanup()
	if reg == nil {
		// The worker always runs with a registry: heartbeat telemetry is
		// sampled from it even when no observability flag was given.
		reg = obs.NewRegistry()
	}

	client := &fleet.Client{BaseURL: strings.TrimRight(*coordinator, "/"), Worker: *name}
	worker := &fleet.Worker{
		Client: client,
		Dir:    *dir,
		Obs:    reg,
		Events: obsOpts.Events,
		Logf:   func(format string, args ...interface{}) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}

	// First SIGINT drains (finish + upload the current shard, exit clean);
	// the second aborts mid-shard.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	aborted := false
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "campaignworker: draining (finishing the current shard; interrupt again to abort)")
		worker.Drain()
		<-sigc
		aborted = true
		cancel()
	}()

	// Reconstruct the campaign from the coordinator's spec.
	var spec fleet.Spec
	err = fleet.Backoff{}.Retry(ctx, 10, func() error {
		var err error
		spec, err = client.Spec(ctx)
		return err
	})
	if err != nil {
		fail(fmt.Errorf("fetching campaign spec from %s: %w", *coordinator, err))
	}
	modelSpec, err := hafi.ParseModelSpec(specModel(spec))
	if err != nil {
		fail(fmt.Errorf("coordinator advertises unknown fault model %q: %w", spec.FaultModel, err))
	}
	fmt.Printf("joining fleet: cpu=%s prog=%s stride=%d model=%s (%d points, golden %016x)\n",
		spec.CPU, spec.Prog, spec.Stride, modelSpec, spec.NumPoints, spec.GoldenSignature)

	target, err := fleet.NewTarget(spec.CPU, spec.Prog)
	if err != nil {
		fail(err)
	}
	groups := target.RFGroups
	if !spec.NoRF {
		groups = nil
	}
	start := time.Now()
	golden, err := hafi.RecordGolden(target.NewRun(), 1<<20)
	if err != nil {
		fail(err)
	}
	var set *core.MATESet
	if spec.MATESet != "" {
		if set, err = core.ReadMATESet(strings.NewReader(spec.MATESet), target.NL); err != nil {
			fail(fmt.Errorf("parsing coordinator MATE set: %w", err))
		}
	}
	points := hafi.ModelFaultList(target.NL, golden.HaltCycle, spec.Stride, modelSpec, groups...)
	ctl := hafi.NewControllerPool(target.NewRun, golden)
	runs := make([]hafi.RunW, *workers)
	for i := range runs {
		if runs[i], err = target.NewRunW(*lanes); err != nil {
			fail(err)
		}
	}
	fmt.Printf("reconstructed campaign in %v (%d points, %d device instances)\n",
		time.Since(start).Round(time.Millisecond), len(points), len(runs))

	worker.Runner = &fleet.CampaignRunner{
		Ctl:              ctl,
		Points:           points,
		RunsW:            runs,
		Model:            modelSpec.String(),
		MATESet:          set,
		DisableEarlyExit: spec.DisableEarlyExit,
		Obs:              reg,
		Throttle:         *throttle,
	}

	// Worker.Run re-fetches the spec and runs Spec.Check against the local
	// reconstruction before leasing anything: a mismatched binary refuses to
	// join instead of uploading unmergeable journals.
	if err := worker.Run(ctx); err != nil {
		if aborted || ctx.Err() != nil {
			fmt.Println("interrupted: true (shard aborted; its lease will expire and re-run elsewhere)")
			obsCleanup()
			os.Exit(130)
		}
		fail(err)
	}
}

// specModel returns the spec's fault model, defaulting to "seu" for specs
// from coordinators that predate the field.
func specModel(spec fleet.Spec) string {
	if spec.FaultModel == "" {
		return "seu"
	}
	return spec.FaultModel
}

func usage(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "campaignworker: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "campaignworker: %v\n", err)
	obsCleanup()
	os.Exit(1)
}
