// Command matesearch runs the heuristic MATE search on one of the built-in
// processor netlists and reports the search statistics (the data behind
// Table 1). The discovered MATE set can be dumped to a file for use with
// the prune and campaign tools.
//
//	matesearch -cpu avr                  # all flip-flops
//	matesearch -cpu msp430 -norf         # excluding the register file
//	matesearch -cpu avr -o avr.mates     # dump the MATE set
//	matesearch -cpu avr -exact           # merge exact BDD-derived terms + certificates
//	matesearch -cpu avr -print           # print every MATE
//	matesearch -verilog design.v         # search an imported netlist
//	matesearch -cpu avr -export avr.v    # export the core as structural Verilog
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/exact"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/verilog"
)

// obsCleanup flushes -stats-json and stops the /metrics endpoint; installed
// by main once observability is initialised so every exit path runs it.
var obsCleanup = func() {}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "matesearch: %v\n", err)
	obsCleanup()
	os.Exit(1)
}

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	noRF := flag.Bool("norf", false, "exclude the register file from the fault set")
	depth := flag.Int("depth", 8, "fault-propagation path depth")
	maxTerms := flag.Int("terms", 4, "max gate-masking terms per MATE")
	maxCand := flag.Int("candidates", 100000, "candidate budget per faulty wire")
	out := flag.String("o", "", "write the MATE set to this file")
	exactOn := flag.Bool("exact", false, "augment the heuristic set with exact BDD-derived terms and unmaskability certificates")
	exactBudget := flag.Int("exact-budget", 0, "BDD node budget per fault cone (0 = default)")
	exactWidth := flag.Int("exact-width", 0, "drop exact terms wider than this many literals (0 = unlimited)")
	print := flag.Bool("print", false, "print every discovered MATE")
	verilogIn := flag.String("verilog", "", "search this structural-Verilog netlist instead of a built-in core")
	export := flag.String("export", "", "write the selected netlist as structural Verilog and exit")
	strict := flag.Bool("strict", false, "preflight lint: treat warnings as failures")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fail(err)
	}
	obsCleanup = cleanup
	defer cleanup()

	var nl *netlist.Netlist
	var wires []netlist.WireID
	if *verilogIn != "" {
		f, err := os.Open(*verilogIn)
		if err != nil {
			fail(err)
		}
		parsed, err := verilog.Read(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		nl = parsed
		if *noRF {
			wires = nl.FFQWires("regfile")
		} else {
			wires = nl.FFQWires()
		}
	} else {
		switch *cpu {
		case "avr":
			c := avr.NewCore()
			nl = c.NL
			if *noRF {
				wires = nl.FFQWires(avr.GroupRegFile)
			} else {
				wires = nl.FFQWires()
			}
		case "msp430":
			c := msp430.NewCore()
			nl = c.NL
			if *noRF {
				wires = nl.FFQWires(msp430.GroupRegFile)
			} else {
				wires = nl.FFQWires()
			}
		default:
			fmt.Fprintf(os.Stderr, "matesearch: unknown cpu %q\n", *cpu)
			obsCleanup()
			os.Exit(2)
		}
	}
	if err := lint.Preflight(os.Stderr, nl, *strict); err != nil {
		fail(err)
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fail(err)
		}
		if err := verilog.Write(f, nl); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("exported %s to %s\n", nl.Name, *export)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	params := core.DefaultSearchParams()
	params.Depth = *depth
	params.MaxTerms = *maxTerms
	params.MaxCandidates = *maxCand
	params.Context = ctx
	params.Obs = reg

	defer obsOpts.StartProgress(reg, obs.ProgressConfig{
		Label: "search", Unit: "wires",
		Done:  reg.Counter("search_wires_done_total"),
		Total: reg.Gauge("search_wires"),
	})()

	st := nl.Stats()
	fmt.Printf("netlist %s: %s\n", nl.Name, st)
	res := core.Search(nl, wires, params)
	fmt.Printf("faulty wires:    %d\n", len(wires))
	fmt.Printf("avg cone:        %.0f gates\n", res.AvgConeGates())
	fmt.Printf("median cone:     %d gates\n", res.MedianConeGates())
	fmt.Printf("run time:        %v\n", res.Elapsed)
	fmt.Printf("unmaskable:      %d\n", res.Unmaskable)
	fmt.Printf("MATE candidates: %d\n", res.TotalCandidates)
	fmt.Printf("MATEs:           %d\n", res.Set.Size())
	mean, std := res.Set.AvgInputs()
	fmt.Printf("avg inputs:      %.1f ± %.1f\n", mean, std)

	if *exactOn && !res.Interrupted {
		er := exact.FindExactTerms(nl, wires, res.Set, exact.Options{
			NodeBudget:   *exactBudget,
			MaxTermWidth: *exactWidth,
			Obs:          reg,
		})
		created := er.MergeInto(res.Set)
		fmt.Printf("exact terms:     %d new (term, wire) pairs, %d new MATEs\n", er.TermsFound, created)
		fmt.Printf("exact certified: %d unmaskable flip-flops\n", len(er.Certificates))
		fmt.Printf("exact BDD nodes: %d (%d cones over budget)\n", er.BDDNodes, er.Truncated)
		fmt.Printf("exact run time:  %v\n", er.Elapsed)
		fmt.Printf("MATEs total:     %d\n", res.Set.Size())
	}

	if *print {
		for _, m := range res.Set.MATEs {
			fmt.Printf("  %s (masks %d wires)\n", m.String(nl), len(m.Masks))
		}
	}
	if res.Interrupted {
		// A partial MATE set is sound (every MATE found is valid) but
		// covers only part of the fault set; refuse to persist it so it
		// cannot masquerade as a complete search result.
		fmt.Println("interrupted: true (partial search, output file not written)")
		obsCleanup()
		os.Exit(130)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := core.WriteMATESet(f, nl, res.Set); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
