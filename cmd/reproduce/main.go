// Command reproduce regenerates every table and figure of the paper's
// evaluation on the rebuilt substrate:
//
//	reproduce                # everything
//	reproduce -what table1   # just Table 1
//	reproduce -what table2   # AVR MATE performance
//	reproduce -what table3   # MSP430 MATE performance
//	reproduce -what figure1  # the worked example
//	reproduce -what lut      # Section 6.1 LUT costs
//	reproduce -what campaign # HAFI campaign with online pruning
//	reproduce -what intercycle # offline inter-cycle vs online MATEs
//	reproduce -what crosslayer # ISA-level vs flip-flop-level injection
//
// Search parameters default to the paper's (depth 8, ≤4 terms, 100k
// candidates per wire) and can be overridden with flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// obsCleanup flushes -stats-json and stops the /metrics endpoint; installed
// by main once observability is initialised so every exit path runs it.
var obsCleanup = func() {}

func main() {
	what := flag.String("what", "all", "table1|table2|table3|figure1|lut|campaign|intercycle|crosslayer|all")
	depth := flag.Int("depth", 8, "fault-propagation path depth")
	maxTerms := flag.Int("terms", 4, "max gate-masking terms per MATE")
	maxCand := flag.Int("candidates", 100000, "candidate budget per faulty wire")
	stride := flag.Int("stride", 25, "campaign: injection-cycle stride")
	validate := flag.Bool("validate", false, "campaign: re-execute pruned points to verify benignity")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	obsCleanup = cleanup
	defer cleanup()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	params := core.DefaultSearchParams()
	params.Depth = *depth
	params.MaxTerms = *maxTerms
	params.MaxCandidates = *maxCand
	params.Context = ctx
	params.Obs = reg

	run := func(name string, fn func() error) {
		if *what != "all" && *what != name {
			return
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "reproduce: interrupted before %s\n", name)
			obsCleanup()
			os.Exit(130)
		}
		start := time.Now()
		sp := reg.StartSpan("reproduce/" + name)
		err := fn()
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce %s: %v\n", name, err)
			obsCleanup()
			os.Exit(1)
		}
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "reproduce: interrupted during %s (output above is partial)\n", name)
			obsCleanup()
			os.Exit(130)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("figure1", func() error {
		fmt.Println(experiments.Figure1(8))
		return nil
	})
	run("table1", func() error {
		rows := experiments.Table1(experiments.PrepareAVR(), params)
		rows = append(rows, experiments.Table1(experiments.PrepareMSP430(), params)...)
		fmt.Println(experiments.FormatTable1(rows))
		return nil
	})
	run("table2", func() error {
		fmt.Println(experiments.FormatPerf(experiments.Perf(experiments.PrepareAVR(), params), 2))
		return nil
	})
	run("table3", func() error {
		fmt.Println(experiments.FormatPerf(experiments.Perf(experiments.PrepareMSP430(), params), 3))
		return nil
	})
	run("lut", func() error {
		rows := experiments.LUTCosts(experiments.PrepareAVR(), params)
		rows = append(rows, experiments.LUTCosts(experiments.PrepareMSP430(), params)...)
		fmt.Println(experiments.FormatLUT(rows))
		return nil
	})
	run("intercycle", func() error {
		var rows []experiments.InterCycleRow
		for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
			r, err := experiments.InterCycle(c, params)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		fmt.Println(experiments.FormatInterCycle(rows))
		return nil
	})
	run("crosslayer", func() error {
		var rows []experiments.CrossLayerRow
		for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
			r, err := experiments.CrossLayer(c, *stride)
			if err != nil {
				return err
			}
			rows = append(rows, r...)
		}
		fmt.Println(experiments.FormatCrossLayer(rows))
		return nil
	})
	run("campaign", func() error {
		var rows []*experiments.CampaignRow
		for _, c := range []*experiments.CPUCase{experiments.PrepareAVR(), experiments.PrepareMSP430()} {
			row, err := experiments.Campaign(ctx, c, "fib", *stride, params, *validate)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		fmt.Println(experiments.FormatCampaign(rows))
		return nil
	})
}
