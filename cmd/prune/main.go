// Command prune replays a recorded execution trace against a MATE set and
// reports the fault-space reduction — offline fault-space pruning as a
// HAFI campaign planner would run it. It can consume VCD traces written by
// tracesim (or recompute the trace itself) and MATE sets written by
// matesearch (or search on the fly).
//
//	prune -cpu avr -prog fib                     # everything on the fly
//	prune -cpu avr -prog fib -norf -top 50       # top-50 selection
//	prune -cpu msp430 -vcd msp_conv.vcd -mates msp.mates
//	prune -cpu avr -prog fib -intercycle         # offline inter-cycle analysis
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/cpu/avr"
	"repro/internal/cpu/msp430"
	"repro/internal/intercycle"
	"repro/internal/lint"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/progs"
	"repro/internal/prune"
	"repro/internal/sim"
	"repro/internal/vcd"
)

// obsCleanup flushes -stats-json and stops the /metrics endpoint; installed
// by main once observability is initialised so every exit path runs it.
var obsCleanup = func() {}

func main() {
	cpu := flag.String("cpu", "avr", "processor: avr or msp430")
	prog := flag.String("prog", "fib", "built-in workload: fib, conv or sort")
	vcdFile := flag.String("vcd", "", "replay this VCD trace instead of simulating")
	matesFile := flag.String("mates", "", "load this MATE set instead of searching")
	noRF := flag.Bool("norf", false, "exclude the register file from the fault set")
	top := flag.Int("top", 0, "evaluate only the top-N MATEs (0 = complete set)")
	cycles := flag.Int("cycles", progs.TraceCycles, "trace length when simulating")
	inter := flag.Bool("intercycle", false, "run the offline inter-cycle analysis instead of MATE replay")
	strict := flag.Bool("strict", false, "preflight lint: treat warnings as failures")
	obsOpts := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()

	reg, cleanup, err := obsOpts.Init(os.Stderr)
	if err != nil {
		fail(err)
	}
	obsCleanup = cleanup
	defer cleanup()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var nl *netlist.Netlist
	var wires []netlist.WireID
	var tr *sim.Trace

	switch *cpu {
	case "avr":
		c := avr.NewCore()
		nl = c.NL
		if *noRF {
			wires = nl.FFQWires(avr.GroupRegFile)
		} else {
			wires = nl.FFQWires()
		}
		if *vcdFile == "" {
			p := progs.AVRFib()
			switch *prog {
			case "conv":
				p = progs.AVRConv()
			case "sort":
				p = progs.AVRSort()
			}
			tr = avr.NewSystem(c, p).Record(*cycles)
		}
	case "msp430":
		c := msp430.NewCore()
		nl = c.NL
		if *noRF {
			wires = nl.FFQWires(msp430.GroupRegFile)
		} else {
			wires = nl.FFQWires()
		}
		if *vcdFile == "" {
			p := progs.MSP430Fib()
			switch *prog {
			case "conv":
				p = progs.MSP430Conv()
			case "sort":
				p = progs.MSP430Sort()
			}
			tr = msp430.NewSystem(c, p).Record(*cycles)
		}
	default:
		fail(fmt.Errorf("unknown cpu %q", *cpu))
	}
	if err := lint.Preflight(os.Stderr, nl, *strict); err != nil {
		fail(err)
	}

	if *vcdFile != "" {
		f, err := os.Open(*vcdFile)
		if err != nil {
			fail(err)
		}
		tr, err = vcd.Read(f, nl)
		f.Close()
		if err != nil {
			fail(err)
		}
	}

	if *inter {
		res, err := intercycle.Analyze(nl, tr, wires)
		if err != nil {
			fail(err)
		}
		fmt.Printf("trace:            %d cycles, %d fault wires\n", res.Cycles, res.FaultWires)
		fmt.Printf("fault space:      %d points\n", res.TotalPoints)
		fmt.Printf("provably benign:  %d points (%.2f%%)\n", res.Benign, 100*res.Reduction())
		fmt.Printf("open-ended:       %d points (confined to trace end)\n", res.OpenEnd)
		return
	}

	var set *core.MATESet
	if *matesFile != "" {
		f, err := os.Open(*matesFile)
		if err != nil {
			fail(err)
		}
		set, err = core.ReadMATESet(f, nl)
		f.Close()
		if err != nil {
			fail(err)
		}
	} else {
		params := core.DefaultSearchParams()
		params.Context = ctx
		params.Obs = reg
		sres := core.Search(nl, wires, params)
		if sres.Interrupted {
			fmt.Println("interrupted: true (during MATE search, nothing evaluated)")
			obsCleanup()
			os.Exit(130)
		}
		set = sres.Set
	}

	if *top > 0 {
		set = prune.SelectTopN(set, tr, wires, *top)
		fmt.Printf("selected top %d MATEs by trace hit count\n", set.Size())
	}

	defer obsOpts.StartProgress(reg, obs.ProgressConfig{
		Label: "replay", Unit: "cycles",
		Done:  reg.Counter("prune_cycles_done_total"),
		Total: reg.Gauge("prune_cycles"),
	})()
	res := prune.EvaluateInstrumented(ctx, set, tr, wires, reg)
	fmt.Printf("trace:            %d cycles, %d fault wires\n", res.Cycles, res.FaultWires)
	fmt.Printf("fault space:      %d points\n", res.TotalPoints)
	fmt.Printf("pruned as benign: %d points (%.2f%%)\n", res.MaskedPoints, 100*res.Reduction())
	fmt.Printf("effective MATEs:  %d (avg %.1f ± %.1f inputs)\n",
		res.EffectiveMATEs, res.AvgInputs, res.StdInputs)
	if ranked := res.RankedMATEs(); len(ranked) > 0 && ranked[0].PointsPruned > 0 {
		fmt.Println("top MATEs (cost/benefit = points pruned per term literal):")
		for i, st := range ranked {
			if i == 5 || st.PointsPruned == 0 {
				break
			}
			fmt.Printf("  #%-4d width %-2d triggers %-8d pruned %-8d c/b %.1f\n",
				st.Index, st.Literals, st.Triggers, st.PointsPruned, st.CostBenefit())
		}
	}
	if res.Interrupted {
		fmt.Println("interrupted: true (partial replay; masked count is a lower bound)")
		obsCleanup()
		os.Exit(130)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "prune: %v\n", err)
	obsCleanup()
	os.Exit(1)
}
