package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
)

var testHeader = journal.Header{GoldenSignature: 1, NumPoints: 10, FaultListHash: 2}

// writeJournal lays down a small campaign: two executed points and one
// attributed pruned point. dropLast omits the final record to fabricate a
// coverage regression for diff tests.
func writeJournal(t *testing.T, dropLast bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.journal")
	w, err := journal.Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(journal.Record{Index: 0, FF: 1, Cycle: 0, Duration: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMATEHit(journal.MATEHit{Index: 1, FF: 2, MATE: 4, Width: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(journal.Record{Index: 1, FF: 2, Cycle: 5, Duration: 1, Pruned: true}); err != nil {
		t.Fatal(err)
	}
	if !dropLast {
		if err := w.Append(journal.Record{Index: 2, FF: 3, Cycle: 9, Duration: 1, Outcome: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextReport(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{writeJournal(t, false)}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	for _, want := range []string{"10 points, 3 classified", "mate", "#4"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONAndCSV(t *testing.T) {
	path := writeJournal(t, false)
	var out, errw bytes.Buffer
	if code := run([]string{"-format", "json", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("invalid JSON: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-format", "csv", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "index,ff,cycle") {
		t.Fatalf("csv = %q", out.String())
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	full := writeJournal(t, false)
	short := writeJournal(t, true)

	// Self-diff: clean, exit 0.
	var out, errw bytes.Buffer
	if code := run([]string{"-diff", full, full}, &out, &errw); code != 0 {
		t.Fatalf("self diff exit %d, stderr %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "regressions: none") {
		t.Fatalf("self diff output: %s", out.String())
	}

	// Candidate missing a point: regression, exit 3.
	out.Reset()
	if code := run([]string{"-diff", full, short}, &out, &errw); code != 3 {
		t.Fatalf("regressing diff exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "coverage regressions: 1") {
		t.Fatalf("diff output: %s", out.String())
	}

	// Gaining coverage in the candidate is not a regression.
	out.Reset()
	if code := run([]string{"-diff", short, full}, &out, &errw); code != 0 {
		t.Fatalf("gaining diff exit %d\n%s", code, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.journal")}, &out, &errw); code != 1 {
		t.Fatalf("missing journal exit %d", code)
	}
	if code := run([]string{"-format", "xml", writeJournal(t, false)}, &out, &errw); code != 1 {
		t.Fatalf("bad format exit %d", code)
	}
	if code := run([]string{}, &out, &errw); code != 1 {
		t.Fatalf("no args exit %d", code)
	}
	if code := run([]string{"-diff", writeJournal(t, false)}, &out, &errw); code != 1 {
		t.Fatalf("diff with one journal exit %d", code)
	}
}
