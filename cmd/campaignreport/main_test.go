package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/journal"
)

var testHeader = journal.Header{GoldenSignature: 1, NumPoints: 10, FaultListHash: 2}

// writeJournal lays down a small campaign: two executed points and one
// attributed pruned point. dropLast omits the final record to fabricate a
// coverage regression for diff tests.
func writeJournal(t *testing.T, dropLast bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.journal")
	w, err := journal.Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(journal.Record{Index: 0, FF: 1, Cycle: 0, Duration: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendMATEHit(journal.MATEHit{Index: 1, FF: 2, MATE: 4, Width: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(journal.Record{Index: 1, FF: 2, Cycle: 5, Duration: 1, Pruned: true}); err != nil {
		t.Fatal(err)
	}
	if !dropLast {
		if err := w.Append(journal.Record{Index: 2, FF: 3, Cycle: 9, Duration: 1, Outcome: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextReport(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{writeJournal(t, false)}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	for _, want := range []string{"10 points, 3 classified", "mate", "#4"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONAndCSV(t *testing.T) {
	path := writeJournal(t, false)
	var out, errw bytes.Buffer
	if code := run([]string{"-format", "json", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	if !json.Valid(out.Bytes()) {
		t.Fatalf("invalid JSON: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-format", "csv", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "index,ff,cycle") {
		t.Fatalf("csv = %q", out.String())
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	full := writeJournal(t, false)
	short := writeJournal(t, true)

	// Self-diff: clean, exit 0.
	var out, errw bytes.Buffer
	if code := run([]string{"-diff", full, full}, &out, &errw); code != 0 {
		t.Fatalf("self diff exit %d, stderr %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "regressions: none") {
		t.Fatalf("self diff output: %s", out.String())
	}

	// Candidate missing a point: regression, exit 3.
	out.Reset()
	if code := run([]string{"-diff", full, short}, &out, &errw); code != 3 {
		t.Fatalf("regressing diff exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "coverage regressions: 1") {
		t.Fatalf("diff output: %s", out.String())
	}

	// Gaining coverage in the candidate is not a regression.
	out.Reset()
	if code := run([]string{"-diff", short, full}, &out, &errw); code != 0 {
		t.Fatalf("gaining diff exit %d\n%s", code, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope.journal")}, &out, &errw); code != 1 {
		t.Fatalf("missing journal exit %d", code)
	}
	if code := run([]string{"-format", "xml", writeJournal(t, false)}, &out, &errw); code != 1 {
		t.Fatalf("bad format exit %d", code)
	}
	if code := run([]string{}, &out, &errw); code != 1 {
		t.Fatalf("no args exit %d", code)
	}
	if code := run([]string{"-diff", writeJournal(t, false)}, &out, &errw); code != 1 {
		t.Fatalf("diff with one journal exit %d", code)
	}
}

// writeFleetPair lays down the same 10-point campaign twice: once as a
// single-process journal and once shard-by-shard merged through
// journal.Merge — the shape a campaignd fleet produces.
func writeFleetPair(t *testing.T) (single, merged string) {
	t.Helper()
	dir := t.TempDir()
	recs := make([]journal.Record, 10)
	for i := range recs {
		recs[i] = journal.Record{Index: uint64(i), FF: uint32(i % 3), Cycle: uint32(i), Duration: 1, Outcome: uint8(i % 3)}
	}
	recs[4].Outcome = 0
	recs[4].Pruned = true
	hit := journal.MATEHit{Index: 4, FF: 1, MATE: 7, Width: 3}

	single = filepath.Join(dir, "single.journal")
	w, err := journal.Create(single, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Pruned {
			if err := w.AppendMATEHit(hit); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Two shards of 5 points with local indexes, merged back together.
	var shards []journal.MergeShard
	for s := 0; s < 2; s++ {
		path := filepath.Join(dir, "shard.journal")
		h := journal.Header{GoldenSignature: testHeader.GoldenSignature, NumPoints: 5, FaultListHash: uint64(100 + s)}
		sw, err := journal.Create(path, h)
		if err != nil {
			t.Fatal(err)
		}
		for li := 0; li < 5; li++ {
			rec := recs[s*5+li]
			rec.Index = uint64(li)
			if rec.Pruned {
				lh := hit
				lh.Index = uint64(li)
				if err := sw.AppendMATEHit(lh); err != nil {
					t.Fatal(err)
				}
			}
			if err := sw.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, journal.MergeShard{Rec: rec, Base: uint64(s * 5), Want: h})
	}
	merged = filepath.Join(dir, "merged.journal")
	if _, err := journal.Merge(merged, testHeader, shards); err != nil {
		t.Fatal(err)
	}
	return single, merged
}

func TestRunFleetMergedJournal(t *testing.T) {
	single, merged := writeFleetPair(t)

	// A fleet-merged journal is a plain campaign journal: the report reads
	// it unchanged, and diffing it against the single-process run is clean.
	var out, errw bytes.Buffer
	if code := run([]string{merged}, &out, &errw); code != 0 {
		t.Fatalf("report on merged journal exit %d, stderr %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "10 points, 10 classified") {
		t.Fatalf("merged report:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-diff", single, merged}, &out, &errw); code != 0 {
		t.Fatalf("single-vs-merged diff exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "regressions: none") {
		t.Fatalf("diff output:\n%s", out.String())
	}
}

func TestRunFleetStatsSurfaced(t *testing.T) {
	_, merged := writeFleetPair(t)
	stats := filepath.Join(t.TempDir(), "run.stats")
	err := os.WriteFile(stats, []byte(`{
		"uptime_seconds": 12.5,
		"counters": {
			"fleet_leases_granted_total": 9,
			"fleet_lease_expiries_total": 2,
			"fleet_lease_regrants_total": 2,
			"fleet_completions_stale_total": 1,
			"fleet_merges_total": 1
		}
	}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-stats-json", stats, merged}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errw.String())
	}
	for _, want := range []string{"9 leases granted", "2 expired", "2 re-leased", "1 stale completions fenced off"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("fleet counters not surfaced (missing %q):\n%s", want, out.String())
		}
	}
}
