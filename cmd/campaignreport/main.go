// Command campaignreport analyzes recovered campaign journals: outcome and
// coverage summaries, per-MATE effectiveness tables ranked by the paper's
// cost/benefit metric, FF × cycle-window outcome heatmaps, and a
// point-for-point diff of two campaigns flagging coverage and
// classification regressions.
//
//	campaignreport fib.journal                       # text report
//	campaignreport -format json fib.journal          # machine-readable
//	campaignreport -format csv fib.journal           # one row per point
//	campaignreport -bins 0 fib.journal               # suppress the heatmap
//	campaignreport -stats-json run.stats fib.journal # runtime enrichment
//	campaignreport -diff base.journal new.journal    # compare campaigns
//	campaignreport -check-trace fleet.trace          # validate a stitched trace
//
// Exit status: 0 clean, 1 usage or I/O error, 3 when -diff found coverage
// or classification regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaignreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text, json or csv")
	bins := fs.Int("bins", 48, "heatmap cycle-window columns (0 disables the heatmap)")
	statsA := fs.String("stats-json", "", "enrich the (first) journal with this -stats-json dump")
	statsB := fs.String("stats-json-b", "", "enrich the second -diff journal with this -stats-json dump")
	diff := fs.Bool("diff", false, "compare two journals point for point (baseline first)")
	diffModels := fs.Bool("diff-models", false, "compare two journals of different fault models site by site (informational; reference first)")
	checkTrace := fs.Bool("check-trace", false, "validate a stitched fleet trace file (argument is the trace, not a journal)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *checkTrace {
		if fs.NArg() != 1 {
			fmt.Fprintf(stderr, "campaignreport: -check-trace wants 1 trace file argument, got %d\n", fs.NArg())
			return 1
		}
		chk, err := report.CheckTrace(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "campaignreport: %v\n", err)
			return 1
		}
		if *format == "json" {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(chk); err != nil {
				fmt.Fprintf(stderr, "campaignreport: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Fprintf(stdout, "trace:      %s (trace id %s)\n", fs.Arg(0), chk.TraceID)
		fmt.Fprintf(stdout, "events:     %d total, %d worker segment events properly nested\n",
			chk.Events, chk.SegmentEvents)
		fmt.Fprintf(stdout, "shards:     %d process groups, workers: %s\n",
			chk.Shards, strings.Join(chk.Workers, ", "))
		return 0
	}
	if *diff && *diffModels {
		fmt.Fprintln(stderr, "campaignreport: -diff and -diff-models are mutually exclusive")
		return 1
	}
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(stderr, "campaignreport: unknown format %q (want text, json or csv)\n", *format)
		return 1
	}

	want := 1
	if *diff || *diffModels {
		want = 2
	}
	if fs.NArg() != want {
		fmt.Fprintf(stderr, "campaignreport: want %d journal argument(s), got %d\n", want, fs.NArg())
		fs.Usage()
		return 1
	}

	a, err := report.Load(fs.Arg(0), *statsA)
	if err != nil {
		fmt.Fprintf(stderr, "campaignreport: %v\n", err)
		return 1
	}

	if *diffModels {
		b, err := report.Load(fs.Arg(1), *statsB)
		if err != nil {
			fmt.Fprintf(stderr, "campaignreport: %v\n", err)
			return 1
		}
		d, err := report.DiffModels(a, b)
		if err != nil {
			fmt.Fprintf(stderr, "campaignreport: %v\n", err)
			return 1
		}
		switch *format {
		case "text":
			err = d.WriteModelDiffText(stdout, a.Path, b.Path)
		case "json":
			err = d.WriteModelDiffJSON(stdout)
		case "csv":
			err = d.WriteModelDiffCSV(stdout)
		}
		if err != nil {
			fmt.Fprintf(stderr, "campaignreport: %v\n", err)
			return 1
		}
		// Models are expected to disagree: site differences are
		// informational, never a regression exit.
		return 0
	}

	if !*diff {
		var err error
		switch *format {
		case "text":
			err = report.BuildDocument(a, *bins).WriteText(stdout)
		case "json":
			err = report.BuildDocument(a, *bins).WriteJSON(stdout)
		case "csv":
			err = report.WriteCSV(stdout, a)
		}
		if err != nil {
			fmt.Fprintf(stderr, "campaignreport: %v\n", err)
			return 1
		}
		return 0
	}

	b, err := report.Load(fs.Arg(1), *statsB)
	if err != nil {
		fmt.Fprintf(stderr, "campaignreport: %v\n", err)
		return 1
	}
	d, err := report.Diff(a, b)
	if err != nil {
		fmt.Fprintf(stderr, "campaignreport: %v\n", err)
		return 1
	}
	switch *format {
	case "text":
		err = d.WriteDiffText(stdout, a.Path, b.Path)
	case "json":
		err = d.WriteDiffJSON(stdout)
	case "csv":
		err = d.WriteDiffCSV(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "campaignreport: %v\n", err)
		return 1
	}
	if d.Regressions() > 0 {
		return 3
	}
	return 0
}
