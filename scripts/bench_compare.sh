#!/usr/bin/env bash
# bench_compare.sh — compare two bench_snapshot.sh JSON snapshots and warn on
# per-benchmark ns/op regressions beyond a threshold (default 15%).
#
#   ./scripts/bench_compare.sh BENCH_0.json BENCH_1.json
#   THRESHOLD=25 ./scripts/bench_compare.sh old.json new.json
#   STRICT=1 ./scripts/bench_compare.sh old.json new.json   # exit 1 on any warn
#   STRICT_RE='^BenchmarkCampaign' ./scripts/bench_compare.sh old.json new.json
#
# The comparison is advisory by default (exit 0 even with warnings):
# single-run 1x snapshots are noisy, so CI surfaces regressions without
# failing the build. Set STRICT=1 to turn every warning into a failure, or
# STRICT_RE to a grep -E pattern to fail only when a matching benchmark
# regresses (CI guards the campaign hot path strictly and leaves the noisier
# microbenches advisory).
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json" >&2
    exit 2
fi
base=$1
cand=$2
threshold=${THRESHOLD:-15}
strict=${STRICT:-0}
strict_re=${STRICT_RE:-}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Extract "name ns_per_op" pairs from a snapshot. The snapshots are written
# by bench_snapshot.sh with one benchmark object per line, so a line-oriented
# scan is reliable without a JSON parser dependency.
extract() {
    sed -n 's/.*"name": *"\([^"]*\)".*"ns_per_op": *\([0-9.]*\).*/\1 \2/p' "$1" | sort
}
extract "$base" > "$tmp/base"
extract "$cand" > "$tmp/cand"

if ! [ -s "$tmp/base" ] || ! [ -s "$tmp/cand" ]; then
    echo "bench-compare: empty snapshot ($base or $cand)" >&2
    exit 2
fi

join "$tmp/base" "$tmp/cand" | awk -v thr="$threshold" -v out="$tmp/regressed" '
{
    name = $1; old = $2; new = $3
    if (old <= 0) next
    delta = 100 * (new - old) / old
    printf "  %-44s %12.0f -> %12.0f ns/op  %+6.1f%%%s\n",
        name, old, new, delta, (delta > thr) ? "  <-- REGRESSION" : ""
    if (delta > thr) { n++; print name > out }
}
END { exit (n > 200) ? 200 : n }' && regressions=0 || regressions=$?

missing=$(join -v 1 "$tmp/base" "$tmp/cand" | awk '{print $1}')
if [ -n "$missing" ]; then
    echo "bench-compare: benchmarks missing from $cand:" >&2
    printf '  %s\n' $missing >&2
fi

if [ "$regressions" -gt 0 ]; then
    echo "bench-compare: WARNING: $regressions benchmark(s) regressed more than ${threshold}% vs $base" >&2
    if [ "$strict" = "1" ]; then
        exit 1
    fi
    if [ -n "$strict_re" ] && grep -qE "$strict_re" "$tmp/regressed"; then
        echo "bench-compare: FAIL: strict benchmark(s) regressed (pattern: $strict_re):" >&2
        grep -E "$strict_re" "$tmp/regressed" | sed 's/^/  /' >&2
        exit 1
    fi
else
    echo "bench-compare: no regressions beyond ${threshold}% vs $base"
fi
exit 0
