#!/usr/bin/env bash
# campaign_smoke.sh — end-to-end crash-resume smoke test for cmd/campaign.
#
# Runs a short campaign three ways: uninterrupted, interrupted mid-flight
# (deterministically, after 3 classified points), and resumed from the
# journal the interrupted run left behind. The resumed run must reproduce
# the uninterrupted result exactly. A real-SIGINT variant exercises the
# signal path as well, tolerating the race between signal delivery and
# campaign completion.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/campaign" ./cmd/campaign
args=(-cpu avr -prog fib -stride 300 -noprune)

# Stable result lines: everything except timing.
summary() {
    grep -E '^(campaign|pruned|outcomes):' "$1"
    awk '/^executed:/ { print $1, $2 }' "$1"
}

echo "== clean run"
"$tmp/campaign" "${args[@]}" > "$tmp/clean.out"
summary "$tmp/clean.out"

echo "== interrupted run (cancel after 3 points)"
rc=0
"$tmp/campaign" "${args[@]}" -journal "$tmp/smoke.journal" -interruptafter 3 \
    > "$tmp/partial.out" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: interrupted run exited $rc, want 130" >&2
    cat "$tmp/partial.out" >&2
    exit 1
fi
grep -q 'interrupted: true' "$tmp/partial.out" || {
    echo "FAIL: no 'interrupted: true' marker in partial output" >&2
    cat "$tmp/partial.out" >&2
    exit 1
}

echo "== resumed run"
"$tmp/campaign" "${args[@]}" -journal "$tmp/smoke.journal" -resume > "$tmp/resumed.out"
grep -q '^resumed:' "$tmp/resumed.out" || {
    echo "FAIL: resumed run replayed nothing" >&2
    cat "$tmp/resumed.out" >&2
    exit 1
}

summary "$tmp/clean.out"   > "$tmp/clean.sum"
summary "$tmp/resumed.out" > "$tmp/resumed.sum"
if ! diff -u "$tmp/clean.sum" "$tmp/resumed.sum"; then
    echo "FAIL: resumed result differs from uninterrupted run" >&2
    exit 1
fi

echo "== real SIGINT"
rc=0
"$tmp/campaign" "${args[@]}" -journal "$tmp/sigint.journal" > "$tmp/sigint.out" &
pid=$!
sleep 0.3
kill -INT "$pid" 2>/dev/null || true
wait "$pid" || rc=$?
if [ "$rc" -eq 130 ]; then
    # Interrupted in flight: the journal must resume to the clean result.
    "$tmp/campaign" "${args[@]}" -journal "$tmp/sigint.journal" -resume > "$tmp/sigint2.out"
    summary "$tmp/sigint2.out" > "$tmp/sigint2.sum"
    diff -u "$tmp/clean.sum" "$tmp/sigint2.sum" || {
        echo "FAIL: SIGINT-resumed result differs from uninterrupted run" >&2
        exit 1
    }
elif [ "$rc" -eq 0 ]; then
    # Campaign won the race against the signal: result must match anyway.
    summary "$tmp/sigint.out" > "$tmp/sigint.sum"
    diff -u "$tmp/clean.sum" "$tmp/sigint.sum" || {
        echo "FAIL: SIGINT-run (completed) result differs from clean run" >&2
        exit 1
    }
else
    echo "FAIL: SIGINT run exited $rc, want 0 or 130" >&2
    cat "$tmp/sigint.out" >&2
    exit 1
fi

echo "campaign-smoke: OK"
