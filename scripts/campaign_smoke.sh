#!/usr/bin/env bash
# campaign_smoke.sh — end-to-end crash-resume smoke test for cmd/campaign.
#
# Runs a short campaign three ways: uninterrupted, interrupted mid-flight
# (deterministically, after 3 classified points), and resumed from the
# journal the interrupted run left behind. The resumed run must reproduce
# the uninterrupted result exactly. A real-SIGINT variant exercises the
# signal path as well, tolerating the race between signal delivery and
# campaign completion.
#
# A further section starts a campaign with -metrics-addr and scrapes the
# live /metrics endpoint mid-flight: the injection and journal counters must
# be non-zero while the campaign is still running.
#
# The final section exercises cmd/campaignreport: a pruned campaign pair
# (clean, and crash+resume) is analyzed and diffed — the resumed journal must
# show zero regressions against the clean baseline, and a journal diffed
# against itself must always be clean. A -trace run checks the Chrome
# trace-event output is well-formed.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/campaign" ./cmd/campaign
args=(-cpu avr -prog fib -stride 300 -noprune)

# Stable result lines: everything except timing.
summary() {
    grep -E '^(campaign|pruned|outcomes):' "$1"
    awk '/^executed:/ { print $1, $2 }' "$1"
}

echo "== clean run"
"$tmp/campaign" "${args[@]}" > "$tmp/clean.out"
summary "$tmp/clean.out"

echo "== interrupted run (cancel after 3 points)"
rc=0
"$tmp/campaign" "${args[@]}" -journal "$tmp/smoke.journal" -interruptafter 3 \
    > "$tmp/partial.out" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: interrupted run exited $rc, want 130" >&2
    cat "$tmp/partial.out" >&2
    exit 1
fi
grep -q 'interrupted: true' "$tmp/partial.out" || {
    echo "FAIL: no 'interrupted: true' marker in partial output" >&2
    cat "$tmp/partial.out" >&2
    exit 1
}

echo "== resumed run"
"$tmp/campaign" "${args[@]}" -journal "$tmp/smoke.journal" -resume > "$tmp/resumed.out"
grep -q '^resumed:' "$tmp/resumed.out" || {
    echo "FAIL: resumed run replayed nothing" >&2
    cat "$tmp/resumed.out" >&2
    exit 1
}

summary "$tmp/clean.out"   > "$tmp/clean.sum"
summary "$tmp/resumed.out" > "$tmp/resumed.sum"
if ! diff -u "$tmp/clean.sum" "$tmp/resumed.sum"; then
    echo "FAIL: resumed result differs from uninterrupted run" >&2
    exit 1
fi

echo "== batched engine: -workers sharding and convergence early-exit"
"$tmp/campaign" "${args[@]}" -workers 2 -stats-json "$tmp/batched-stats.json" \
    > "$tmp/batched.out"
summary "$tmp/batched.out" > "$tmp/batched.sum"
diff -u "$tmp/clean.sum" "$tmp/batched.sum" || {
    echo "FAIL: -workers 2 result differs from clean run" >&2
    exit 1
}
# The convergence counters must be live: this workload retires experiments
# early, so a zero counter means the early-exit silently stopped firing.
counter() {
    sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p" "$1" | head -n1
}
conv=$(counter "$tmp/batched-stats.json" campaign_converged_total)
saved=$(counter "$tmp/batched-stats.json" campaign_cycles_saved_total)
if [ "${conv:-0}" -le 0 ] || [ "${saved:-0}" -le 0 ]; then
    echo "FAIL: convergence counters not live (converged=${conv:-missing} cycles_saved=${saved:-missing})" >&2
    cat "$tmp/batched-stats.json" >&2
    exit 1
fi
echo "convergence counters: converged=$conv cycles_saved=$saved"

# With the exit disabled every experiment runs to completion: same verdicts,
# zero convergence credit.
"$tmp/campaign" "${args[@]}" -no-early-exit -stats-json "$tmp/full-stats.json" \
    > "$tmp/fullrun.out"
summary "$tmp/fullrun.out" > "$tmp/fullrun.sum"
diff -u "$tmp/clean.sum" "$tmp/fullrun.sum" || {
    echo "FAIL: -no-early-exit result differs from clean run" >&2
    exit 1
}
fullconv=$(counter "$tmp/full-stats.json" campaign_converged_total)
if [ "${fullconv:-0}" -ne 0 ]; then
    echo "FAIL: -no-early-exit run still converged $fullconv experiments" >&2
    exit 1
fi

echo "== real SIGINT"
rc=0
"$tmp/campaign" "${args[@]}" -journal "$tmp/sigint.journal" > "$tmp/sigint.out" &
pid=$!
sleep 0.3
kill -INT "$pid" 2>/dev/null || true
wait "$pid" || rc=$?
if [ "$rc" -eq 130 ]; then
    # Interrupted in flight: the journal must resume to the clean result.
    "$tmp/campaign" "${args[@]}" -journal "$tmp/sigint.journal" -resume > "$tmp/sigint2.out"
    summary "$tmp/sigint2.out" > "$tmp/sigint2.sum"
    diff -u "$tmp/clean.sum" "$tmp/sigint2.sum" || {
        echo "FAIL: SIGINT-resumed result differs from uninterrupted run" >&2
        exit 1
    }
elif [ "$rc" -eq 0 ]; then
    # Campaign won the race against the signal: result must match anyway.
    summary "$tmp/sigint.out" > "$tmp/sigint.sum"
    diff -u "$tmp/clean.sum" "$tmp/sigint.sum" || {
        echo "FAIL: SIGINT-run (completed) result differs from clean run" >&2
        exit 1
    }
else
    echo "FAIL: SIGINT run exited $rc, want 0 or 130" >&2
    cat "$tmp/sigint.out" >&2
    exit 1
fi

echo "== live /metrics scrape"
"$tmp/campaign" "${args[@]}" -journal "$tmp/metrics.journal" \
    -metrics-addr 127.0.0.1:0 -stats-json "$tmp/stats.json" \
    > "$tmp/metrics.out" 2> "$tmp/metrics.err" &
pid=$!

# The CLI announces the bound address (port 0 = kernel-assigned) on stderr.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^metrics: serving on //p' "$tmp/metrics.err" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: campaign never announced its metrics address" >&2
    cat "$tmp/metrics.err" >&2
    exit 1
fi

# Poll the endpoint while the campaign runs; require non-zero injection and
# journal counters from a live scrape (not just the end-of-run stats dump).
scraped=0
while kill -0 "$pid" 2>/dev/null; do
    if body=$(curl -fsS --max-time 2 "http://$addr/metrics" 2>/dev/null); then
        inj=$(printf '%s\n' "$body" | awk '$1 == "campaign_injections_total" {print $2; exit}')
        app=$(printf '%s\n' "$body" | awk '$1 == "journal_appends_total" {print $2; exit}')
        if [ "${inj:-0}" -gt 0 ] 2>/dev/null && [ "${app:-0}" -gt 0 ] 2>/dev/null; then
            echo "live scrape at $addr: campaign_injections_total=$inj journal_appends_total=$app"
            scraped=1
            break
        fi
    fi
    sleep 0.1
done
wait "$pid" || {
    echo "FAIL: metrics-instrumented campaign failed" >&2
    cat "$tmp/metrics.out" "$tmp/metrics.err" >&2
    exit 1
}
if [ "$scraped" -ne 1 ]; then
    echo "FAIL: never scraped non-zero injection/journal counters from live /metrics" >&2
    cat "$tmp/metrics.err" >&2
    exit 1
fi
grep -q '"campaign_points_done_total"' "$tmp/stats.json" || {
    echo "FAIL: -stats-json dump is missing campaign counters" >&2
    cat "$tmp/stats.json" >&2
    exit 1
}

echo "== campaignreport analysis"
go build -o "$tmp/campaignreport" ./cmd/campaignreport
pargs=(-cpu avr -prog fib -stride 300)   # pruning on: journals carry attribution

"$tmp/campaign" "${pargs[@]}" -journal "$tmp/pruned-clean.journal" \
    -trace "$tmp/clean.trace" > "$tmp/pruned-clean.out"
rc=0
"$tmp/campaign" "${pargs[@]}" -journal "$tmp/pruned-crash.journal" -interruptafter 3 \
    > /dev/null || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: pruned interrupted run exited $rc, want 130" >&2
    exit 1
fi
"$tmp/campaign" "${pargs[@]}" -journal "$tmp/pruned-crash.journal" -resume > /dev/null

"$tmp/campaignreport" "$tmp/pruned-clean.journal" > "$tmp/report.out"
grep -Eq '^attribution: [1-9]' "$tmp/report.out" || {
    echo "FAIL: campaignreport credited no pruned points to any MATE" >&2
    cat "$tmp/report.out" >&2
    exit 1
}
grep -q 'classified' "$tmp/report.out" || {
    echo "FAIL: campaignreport output is missing the coverage summary" >&2
    cat "$tmp/report.out" >&2
    exit 1
}
"$tmp/campaignreport" -format json "$tmp/pruned-clean.journal" > /dev/null
"$tmp/campaignreport" -format csv "$tmp/pruned-clean.journal" > /dev/null

# Crash+resume must be point-for-point no worse than the clean run.
"$tmp/campaignreport" -diff "$tmp/pruned-clean.journal" "$tmp/pruned-crash.journal" \
    > "$tmp/diff.out" || {
    echo "FAIL: clean-vs-resumed diff reported regressions" >&2
    cat "$tmp/diff.out" >&2
    exit 1
}
grep -q '^regressions: none' "$tmp/diff.out" || {
    echo "FAIL: clean-vs-resumed diff did not end clean" >&2
    cat "$tmp/diff.out" >&2
    exit 1
}

# A journal diffed against itself is clean by definition.
"$tmp/campaignreport" -diff "$tmp/pruned-clean.journal" "$tmp/pruned-clean.journal" \
    > /dev/null || {
    echo "FAIL: self-diff reported regressions" >&2
    exit 1
}

# The -trace file must be a well-formed Chrome trace-event document.
grep -q '"traceEvents"' "$tmp/clean.trace" || {
    echo "FAIL: -trace output is missing the traceEvents array" >&2
    head -c 500 "$tmp/clean.trace" >&2
    exit 1
}

echo "== fault models: mbu crash-resume, intermittent, cross-model report"
margs=(-cpu avr -prog fib -stride 1000 -fault-model mbu:2)

"$tmp/campaign" "${margs[@]}" -journal "$tmp/mbu-clean.journal" > "$tmp/mbu-clean.out"
grep -q 'model mbu:2' "$tmp/mbu-clean.out" || {
    echo "FAIL: campaign output does not name the fault model" >&2
    cat "$tmp/mbu-clean.out" >&2
    exit 1
}
rc=0
"$tmp/campaign" "${margs[@]}" -journal "$tmp/mbu-crash.journal" -interruptafter 3 \
    > /dev/null || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: interrupted mbu run exited $rc, want 130" >&2
    exit 1
fi
"$tmp/campaign" "${margs[@]}" -journal "$tmp/mbu-crash.journal" -resume > "$tmp/mbu-resumed.out"
summary "$tmp/mbu-clean.out"   > "$tmp/mbu-clean.sum"
summary "$tmp/mbu-resumed.out" > "$tmp/mbu-resumed.sum"
diff -u "$tmp/mbu-clean.sum" "$tmp/mbu-resumed.sum" || {
    echo "FAIL: resumed mbu result differs from uninterrupted run" >&2
    exit 1
}
# Crash+resume must be point-for-point no worse than the clean mbu run.
"$tmp/campaignreport" -diff "$tmp/mbu-clean.journal" "$tmp/mbu-crash.journal" \
    > "$tmp/mbu-diff.out" || {
    echo "FAIL: mbu clean-vs-resumed diff reported regressions" >&2
    cat "$tmp/mbu-diff.out" >&2
    exit 1
}
grep -q '^regressions: none' "$tmp/mbu-diff.out" || {
    echo "FAIL: mbu clean-vs-resumed diff did not end clean" >&2
    cat "$tmp/mbu-diff.out" >&2
    exit 1
}
# The per-model breakdown must name the model in the report.
"$tmp/campaignreport" "$tmp/mbu-clean.journal" > "$tmp/mbu-report.out"
grep -q '^models:' "$tmp/mbu-report.out" && grep -q 'mbu' "$tmp/mbu-report.out" || {
    echo "FAIL: campaignreport is missing the per-model breakdown" >&2
    cat "$tmp/mbu-report.out" >&2
    exit 1
}

# An intermittent-fault campaign end to end, journal recovered and reported.
"$tmp/campaign" -cpu avr -prog fib -stride 1000 -fault-model intermittent:2,6 \
    -journal "$tmp/int.journal" > "$tmp/int.out"
grep -q 'model intermittent:2,6' "$tmp/int.out" || {
    echo "FAIL: intermittent campaign did not echo its model" >&2
    cat "$tmp/int.out" >&2
    exit 1
}
"$tmp/campaignreport" "$tmp/int.journal" > "$tmp/int-report.out"
grep -q 'intermittent' "$tmp/int-report.out" || {
    echo "FAIL: intermittent journal report names no model" >&2
    cat "$tmp/int-report.out" >&2
    exit 1
}

# Cross-model site comparison (informational: always exit 0).
"$tmp/campaignreport" -diff-models "$tmp/pruned-clean.journal" "$tmp/mbu-clean.journal" \
    > "$tmp/models-diff.out" || {
    echo "FAIL: -diff-models exited non-zero" >&2
    cat "$tmp/models-diff.out" >&2
    exit 1
}
grep -q '^model diff:' "$tmp/models-diff.out" || {
    echo "FAIL: -diff-models produced no comparison" >&2
    cat "$tmp/models-diff.out" >&2
    exit 1
}

echo "campaign-smoke: OK"
