#!/usr/bin/env bash
# bench_snapshot.sh — run the benchmark suite once and record the results as
# a machine-readable JSON snapshot (default: BENCH_0.json, committed to the
# repo). The snapshot is the performance baseline future PRs compare against:
#
#   ./scripts/bench_snapshot.sh                 # rewrite BENCH_0.json
#   ./scripts/bench_snapshot.sh /tmp/now.json   # snapshot elsewhere
#   BENCH=BenchmarkCampaign BENCHTIME=10x ./scripts/bench_snapshot.sh out.json
#
# Environment knobs:
#   BENCH      benchmark regex passed to -bench      (default: .)
#   BENCHTIME  per-benchmark budget for -benchtime   (default: 1x)
#   COUNT      repetitions passed to -count          (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_0.json}
bench=${BENCH:-.}
benchtime=${BENCHTIME:-1x}
count=${COUNT:-1}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Benchmarks all live in the root package; -run '^$' skips the (slow)
# end-to-end tests so only benchmark code executes.
go test -run '^$' -bench "$bench" -benchtime "$benchtime" -benchmem -count "$count" . | tee "$raw"

goversion=$(go env GOVERSION)
goos=$(go env GOOS)
goarch=$(go env GOARCH)

awk -v goversion="$goversion" -v goos="$goos" -v goarch="$goarch" \
    -v benchtime="$benchtime" '
BEGIN {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"benchmarks\": [\n"
    n = 0
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    # Benchmark lines look like:
    #   BenchmarkFoo-8  <iters>  <ns> ns/op  [<B> B/op  <allocs> allocs/op]
    name = $1
    sub(/-[0-9]+$/, "", name)
    procs = $1
    sub(/^.*-/, "", procs)
    # Sub-benchmark names ("Foo/bar") have no -N procs suffix at
    # GOMAXPROCS=1; anything non-numeric means "no suffix".
    if (procs !~ /^[0-9]+$/) procs = 1
    line = sprintf("    {\"name\": \"%s\", \"procs\": %s, \"iterations\": %s, \"ns_per_op\": %s", name, procs, $2, $3)
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    if (n++) printf ",\n"
    printf "%s", line
}
END {
    if (n) printf "\n"
    printf "  ]\n}\n"
}' "$raw" > "$out"

echo "bench-snapshot: wrote $out ($(grep -c '"name"' "$out") benchmarks)"
