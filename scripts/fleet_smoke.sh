#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end fault-tolerance drill for the campaign fleet.
#
# Runs the same short campaign twice: once uninterrupted in a single process
# (cmd/campaign), and once distributed across a campaignd coordinator and a
# small fleet of campaignworker processes under induced failures — a zombie
# client that takes a lease and goes silent (its lease must expire and be
# re-granted), and a worker SIGKILLed mid-run. The campaign must still
# finish, the coordinator's recovery counters must show the expiry and the
# re-lease actually happened, and the merged journal must be diff-clean
# against the single-process reference (campaignreport -diff exits 0).
#
# The drill also exercises the fleet observability surface: campaignd runs
# with -trace and -log-json, one worker is throttled so the coordinator
# must flag it as a straggler, /status is scraped mid-run (per-worker
# throughput, ETA, anomaly feed), and the stitched Perfetto trace is
# validated with campaignreport -check-trace after the merge.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/campaign" ./cmd/campaign
go build -o "$tmp/campaignd" ./cmd/campaignd
go build -o "$tmp/campaignworker" ./cmd/campaignworker
go build -o "$tmp/campaignreport" ./cmd/campaignreport

args=(-cpu avr -prog fib -stride 300)

echo "== reference: uninterrupted single-process campaign"
"$tmp/campaign" "${args[@]}" -journal "$tmp/reference.journal" > "$tmp/reference.out"

echo "== coordinator (8 shards, 2s lease TTL)"
"$tmp/campaignd" "${args[@]}" -shards 8 -lease-ttl 2s -heartbeat 400ms \
    -addr 127.0.0.1:0 -dir "$tmp/fleet" \
    -trace "$tmp/fleet.trace" -log-json "$tmp/campaignd.events" \
    > "$tmp/campaignd.out" 2> "$tmp/campaignd.err" &
dpid=$!
pids+=("$dpid")

# The coordinator announces its kernel-assigned port once planning is done.
base=""
for _ in $(seq 1 600); do
    base=$(sed -n 's#^coordinator: .* on \(http://[^ ]*\) .*#\1#p' "$tmp/campaignd.out" | head -n1)
    [ -n "$base" ] && break
    kill -0 "$dpid" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$base" ]; then
    echo "FAIL: campaignd never announced its API address" >&2
    cat "$tmp/campaignd.out" "$tmp/campaignd.err" >&2
    exit 1
fi
echo "coordinator API at $base"

# Zombie: lease a shard and go silent. This guarantees at least one lease
# expiry + re-grant even if the SIGKILLed worker below dies between shards,
# and its shard cannot complete until the TTL has actually lapsed.
zlease=$(curl -fsS -X POST -d '{"worker":"smoke-zombie"}' "$base/v1/lease")
case "$zlease" in
*'"status":"lease"'*) ;;
*)
    echo "FAIL: zombie lease request returned: $zlease" >&2
    exit 1
    ;;
esac

echo "== worker SIGKILLed mid-run"
"$tmp/campaignworker" -coordinator "$base" -name victim -dir "$tmp/victim" \
    > "$tmp/victim.out" 2>&1 &
vpid=$!
pids+=("$vpid")
sleep 1.5
kill -KILL "$vpid" 2>/dev/null || true
wait "$vpid" 2>/dev/null || true

echo "== honest workers finish the campaign (slowpoke throttled to force a straggler)"
"$tmp/campaignworker" -coordinator "$base" -name slowpoke -dir "$tmp/slowpoke" \
    -throttle 5ms > "$tmp/slowpoke.out" 2>&1 &
pids+=("$!")
sleep 0.3
for w in w2 w3; do
    "$tmp/campaignworker" -coordinator "$base" -name "$w" -dir "$tmp/$w" \
        > "$tmp/$w.out" 2>&1 &
    pids+=("$!")
done

echo "== scraping /status mid-run"
saw_rate=0 saw_eta=0 saw_straggler=0
for _ in $(seq 1 300); do
    kill -0 "$dpid" 2>/dev/null || break
    status=$(curl -fsS "$base/status" 2>/dev/null) || { sleep 0.2; continue; }
    if printf '%s' "$status" | jq -e '[.workers[]? | select(.rate > 0)] | length >= 2' > /dev/null; then
        saw_rate=1
    fi
    if printf '%s' "$status" | jq -e '.progress.eta_seconds >= 0 and .progress.points_done > 0' > /dev/null; then
        saw_eta=1
    fi
    if printf '%s' "$status" | jq -e 'any(.anomalies[]?; .type == "straggler" and .subject == "slowpoke")' > /dev/null; then
        saw_straggler=1
    fi
    [ "$saw_rate$saw_eta$saw_straggler" = "111" ] && break
    sleep 0.2
done
if [ "$saw_rate$saw_eta$saw_straggler" != "111" ]; then
    echo "FAIL: /status never showed live fleet telemetry (rates=$saw_rate eta=$saw_eta straggler=$saw_straggler)" >&2
    curl -fsS "$base/status" >&2 || true
    cat "$tmp/campaignd.events" >&2 || true
    exit 1
fi
echo "live /status OK: per-worker rates, converging ETA, slowpoke flagged as straggler"

# The coordinator exits 0 on its own once every shard is merged.
for _ in $(seq 1 1200); do
    kill -0 "$dpid" 2>/dev/null || break
    sleep 0.5
done
if kill -0 "$dpid" 2>/dev/null; then
    echo "FAIL: campaign did not merge within the deadline" >&2
    curl -fsS "$base/v1/status" >&2 || true
    cat "$tmp"/w?.out >&2
    exit 1
fi
rc=0
wait "$dpid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: campaignd exited $rc" >&2
    cat "$tmp/campaignd.out" "$tmp/campaignd.err" >&2
    exit 1
fi
grep -q 'shards merged into' "$tmp/campaignd.out" || {
    echo "FAIL: campaignd finished without merging" >&2
    cat "$tmp/campaignd.out" >&2
    exit 1
}

# The recovery machinery must have actually fired: the zombie's (and
# possibly the victim's) leases expired and were re-granted to honest
# workers. campaignd prints the counters on its final fleet: line.
fleetline=$(grep '^fleet:' "$tmp/campaignd.out")
echo "$fleetline"
expired=$(printf '%s\n' "$fleetline" | sed -n 's/.* \([0-9][0-9]*\) expired.*/\1/p')
regrants=$(printf '%s\n' "$fleetline" | sed -n 's/.* \([0-9][0-9]*\) re-leased.*/\1/p')
if [ "${expired:-0}" -le 0 ] || [ "${regrants:-0}" -le 0 ]; then
    echo "FAIL: no lease expiry/re-grant recorded (expired=${expired:-missing} re-leased=${regrants:-missing})" >&2
    cat "$tmp/campaignd.out" "$tmp/campaignd.err" >&2
    exit 1
fi

echo "== straggler anomaly hit the structured event log"
grep -q '"event":"anomaly.straggler"' "$tmp/campaignd.events" || {
    echo "FAIL: no anomaly.straggler event logged" >&2
    cat "$tmp/campaignd.events" >&2
    exit 1
}

echo "== stitched trace parses and its spans nest"
"$tmp/campaignreport" -check-trace "$tmp/fleet.trace" > "$tmp/trace-check.out" || {
    echo "FAIL: stitched trace failed validation" >&2
    cat "$tmp/trace-check.out" >&2
    exit 1
}
cat "$tmp/trace-check.out"
# The planner may cut fewer shards than requested (cycle-boundary
# rounding); the stitched trace must cover exactly the planned count.
planned=$(sed -n 's/^coordinator: .* in \([0-9][0-9]*\) shards .*/\1/p' "$tmp/campaignd.out" | head -n1)
grep -q "${planned:-8} process groups" "$tmp/trace-check.out" || {
    echo "FAIL: stitched trace does not cover all $planned shards" >&2
    exit 1
}

echo "== merged journal is diff-clean against the single-process reference"
merged="$tmp/fleet/campaign.journal"
"$tmp/campaignreport" "$merged" > "$tmp/report.out"
grep -q 'classified' "$tmp/report.out" || {
    echo "FAIL: campaignreport could not summarize the merged journal" >&2
    cat "$tmp/report.out" >&2
    exit 1
}
"$tmp/campaignreport" -diff "$tmp/reference.journal" "$merged" > "$tmp/diff.out" || {
    echo "FAIL: reference-vs-merged diff reported regressions" >&2
    cat "$tmp/diff.out" >&2
    exit 1
}
grep -q '^regressions: none' "$tmp/diff.out" || {
    echo "FAIL: reference-vs-merged diff did not end clean" >&2
    cat "$tmp/diff.out" >&2
    exit 1
}

echo "fleet-smoke: OK"
