package repro

// Heuristic-vs-exact cross-checks on the real cores, the acceptance tests
// of the exact verification engine:
//
//  1. every MATE the heuristic search emits must be independently re-proved
//     by the BDD engine (zero violations on both CPUs),
//  2. merging the exact prime-implicant terms must strictly increase the
//     number of pruned fault-space points on both CPUs, and
//  3. a campaign pruned with the exact-augmented set must classify exactly
//     like the unpruned full reference run — every additionally pruned
//     point is provably benign.
//
// The tests run with a deliberately small BDD node budget (1<<14): big
// register-file cones fall back gracefully (unproven / heuristic-only),
// which keeps the suite fast while still proving thousands of pairs and a
// strict pruning win. EXPERIMENTS.md records the default-budget numbers.

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/hafi"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/prune"
	"repro/internal/sim"
)

// testExactBudget keeps the tier-1 suite fast; see the package comment.
const testExactBudget = 1 << 14

func writeMATESetFile(path string, nl *netlist.Netlist, set *core.MATESet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := core.WriteMATESet(f, nl, set); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readMATESetFile(path string, nl *netlist.Netlist) (*core.MATESet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadMATESet(f, nl)
}

func maskedPoints(set *core.MATESet, tr *sim.Trace, wires []netlist.WireID) int {
	grid := prune.MaskedGrid(set, tr, wires)
	n := 0
	for _, row := range grid {
		for _, v := range row {
			if v {
				n++
			}
		}
	}
	return n
}

func TestExactVerifyHeuristicMATEsBothCores(t *testing.T) {
	if testing.Short() {
		t.Skip("exact verification of the real cores is not short")
	}
	for _, tc := range []struct {
		name string
		prep func() *experiments.CPUCase
	}{
		{"avr", experiments.PrepareAVR},
		{"msp430", experiments.PrepareMSP430},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.prep()
			set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
			res := exact.VerifyMATESet(c.NL, set, exact.Options{NodeBudget: testExactBudget})
			if !res.Sound() {
				t.Fatalf("heuristic MATEs disproved: %d violations, %d bad certificates: %v",
					len(res.Violations), len(res.BadCertificates), res.Violations)
			}
			if res.PairsChecked == 0 || res.PairsProved != res.PairsChecked {
				t.Fatalf("proof coverage broken: %d/%d pairs proved", res.PairsProved, res.PairsChecked)
			}
			t.Logf("%s: %d MATEs, %d (MATE, wire) pairs proved sound, %d wires over the node budget (unproven)",
				tc.name, set.Size(), res.PairsProved, len(res.Unproven))
		})
	}
}

func TestExactTermsStrictlyIncreasePruning(t *testing.T) {
	if testing.Short() {
		t.Skip("exact term extraction on the real cores is not short")
	}
	for _, tc := range []struct {
		name string
		prep func() *experiments.CPUCase
	}{
		{"avr", experiments.PrepareAVR},
		{"msp430", experiments.PrepareMSP430},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.prep()
			set := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
			heurMasked := maskedPoints(set, c.TraceFib, c.FaultAll)

			fr := exact.FindExactTerms(c.NL, c.FaultAll, set, exact.Options{NodeBudget: testExactBudget})
			if fr.TermsFound == 0 {
				t.Fatal("exact search found no terms the heuristic missed")
			}
			created := fr.MergeInto(set)
			if created == 0 {
				t.Fatal("merge created no new MATEs")
			}
			exactMasked := maskedPoints(set, c.TraceFib, c.FaultAll)
			if exactMasked <= heurMasked {
				t.Fatalf("exact terms did not increase pruning: %d -> %d masked points", heurMasked, exactMasked)
			}

			// Certificates must be consistent with the merged set: a wire
			// proven unmaskable cannot be covered by any MATE.
			certified := set.CertifiedUnmaskable()
			for _, m := range set.MATEs {
				for _, w := range m.Masks {
					if certified[w] {
						t.Fatalf("wire %s is certified unmaskable but a MATE masks it", c.NL.WireName(w))
					}
				}
			}

			// The augmented set must survive a round trip through the MATE
			// set file format, certificates included.
			dir := t.TempDir()
			path := filepath.Join(dir, "exact.mates")
			if err := writeMATESetFile(path, c.NL, set); err != nil {
				t.Fatal(err)
			}
			parsed, err := readMATESetFile(path, c.NL)
			if err != nil {
				t.Fatal(err)
			}
			if parsed.Size() != set.Size() || len(parsed.Certificates) != len(set.Certificates) {
				t.Fatalf("round trip lost data: %d/%d MATEs, %d/%d certificates",
					parsed.Size(), set.Size(), len(parsed.Certificates), len(set.Certificates))
			}
			t.Logf("%s: +%d terms (+%d MATEs), %d certificates, masked points %d -> %d (+%.1f%%)",
				tc.name, fr.TermsFound, created, len(fr.Certificates),
				heurMasked, exactMasked, 100*float64(exactMasked-heurMasked)/float64(heurMasked))
		})
	}
}

// TestDifferentialExactPruneCampaign is the exact-set differential: a
// campaign pruned with the exact-augmented MATE set must classify exactly
// like the unpruned full reference — in particular, every point the exact
// terms additionally prune is OutcomeBenign in the reference run.
func TestDifferentialExactPruneCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign comparison is not short")
	}
	c := experiments.PrepareAVR()
	prog := c.FibProg

	run := c.NewRun(prog)
	golden, err := hafi.RecordGolden(run, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	heur := core.Search(c.NL, c.FaultAll, core.DefaultSearchParams()).Set
	heurGrid := prune.MaskedGrid(heur, golden.Trace, c.FaultAll)

	fr := exact.FindExactTerms(c.NL, c.FaultAll, heur, exact.Options{NodeBudget: testExactBudget})
	fr.MergeInto(heur)
	exactSet := heur

	points := hafi.SampledFaultList(c.NL, golden.HaltCycle, 2000)
	if len(points) < 100 {
		t.Fatalf("fault list too small: %d points", len(points))
	}

	dir := t.TempDir()
	runEngine := func(name string, set *core.MATESet) ([]journal.Record, *hafi.CampaignResult) {
		t.Helper()
		path := filepath.Join(dir, name+".journal")
		ctl := hafi.NewControllerPool(func() hafi.Run { return c.NewRun(prog) }, golden)
		jw, err := journal.Create(path, ctl.JournalHeader(points))
		if err != nil {
			t.Fatal(err)
		}
		res, err := ctl.RunCampaignBatchedPool(hafi.CampaignConfig{
			Points:  points,
			MATESet: set,
			Journal: jw,
			Workers: runtime.NumCPU(),
		}, func() (hafi.Run64, error) { return c.NewRun64(prog) })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := jw.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := journal.Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]journal.Record, len(points))
		for idx, r := range rec.ByIndex {
			out[idx] = r
		}
		return out, res
	}

	exactRecs, exactRes := runEngine("exact", exactSet)
	fullRecs, fullRes := runEngine("reference", nil)

	if fullRes.Skipped != 0 {
		t.Fatalf("reference run pruned %d points; it must execute everything", fullRes.Skipped)
	}
	extra := 0
	for i, p := range points {
		e, f := exactRecs[i], fullRecs[i]
		if e.Pruned {
			if f.Outcome != uint8(hafi.OutcomeBenign) {
				t.Errorf("point %d (ff=%d cycle=%d): exact-pruned but reference outcome %d (UNSOUND)",
					i, p.FF, p.Cycle, f.Outcome)
			}
			if !heurGrid[p.Cycle][p.FF] {
				extra++ // pruned only thanks to the exact terms
			}
			continue
		}
		if e.Outcome != f.Outcome {
			t.Errorf("point %d (ff=%d cycle=%d): exact-campaign outcome %d != reference %d",
				i, p.FF, p.Cycle, e.Outcome, f.Outcome)
		}
		if t.Failed() && i > 20 {
			t.Fatal("aborting after repeated divergence")
		}
	}
	if exactRes.Skipped == 0 {
		t.Error("exact-augmented set pruned nothing on the sampled list")
	}
	t.Logf("%d points: %d pruned with the exact set (%d beyond the heuristic grid), %d executed, reference outcomes %v",
		exactRes.Total, exactRes.Skipped, extra, exactRes.Executed, fullRes.ByOutcome)
}
